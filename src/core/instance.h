// A validated DA-SC problem instance: workers, tasks, and the dependency DAG
// with its precomputed transitive closure.
#ifndef DASC_CORE_INSTANCE_H_
#define DASC_CORE_INSTANCE_H_

#include <vector>

#include "core/task.h"
#include "core/types.h"
#include "core/worker.h"
#include "util/status.h"

namespace dasc::core {

// Immutable after Create(). Validation enforces:
//   * worker/task ids equal their index (dense ids),
//   * skills within [0, num_skills), non-empty worker skill sets,
//   * positive velocities, non-negative wait times and distances,
//   * dependency ids in range, no self-dependency, acyclic dependency graph.
// Create() canonicalizes skill sets (sorted, deduped) and replaces each
// task's dependency list with its *direct* list deduped, while exposing the
// transitive closure and the reverse relation via accessors.
class Instance {
 public:
  static util::Result<Instance> Create(std::vector<Worker> workers,
                                       std::vector<Task> tasks,
                                       int num_skills);

  const std::vector<Worker>& workers() const { return workers_; }
  const std::vector<Task>& tasks() const { return tasks_; }
  const Worker& worker(WorkerId id) const;
  const Task& task(TaskId id) const;
  int num_workers() const { return static_cast<int>(workers_.size()); }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_skills() const { return num_skills_; }

  // All transitive dependencies of `t` (the paper's D_t is closed under
  // transitivity; this is the authoritative dependency set), sorted.
  const std::vector<TaskId>& DepClosure(TaskId t) const;

  // Tasks whose closure contains `t` (i.e., tasks that become unlocked —
  // in part — by assigning `t`), sorted.
  const std::vector<TaskId>& Dependents(TaskId t) const;

  // Sum of closure sizes; the paper's Sum(M) upper bound discussions use it.
  int64_t total_closure_size() const { return total_closure_size_; }

 private:
  Instance() = default;

  std::vector<Worker> workers_;
  std::vector<Task> tasks_;
  int num_skills_ = 0;
  std::vector<std::vector<TaskId>> closure_;
  std::vector<std::vector<TaskId>> dependents_;
  int64_t total_closure_size_ = 0;
};

}  // namespace dasc::core

#endif  // DASC_CORE_INSTANCE_H_
