// Worker-task feasibility predicates (paper constraints 1-2) and dynamic
// worker state used by batch processing.
#ifndef DASC_CORE_FEASIBILITY_H_
#define DASC_CORE_FEASIBILITY_H_

#include "core/instance.h"
#include "geo/distance.h"
#include "geo/road_network.h"

namespace dasc::core {

// Cross-cutting feasibility knobs shared by all algorithms.
struct FeasibilityParams {
  geo::DistanceKind distance_kind = geo::DistanceKind::kEuclidean;
  // Required (non-null) when distance_kind == kRoadNetwork; not owned.
  const geo::RoadNetwork* road_network = nullptr;
};

// Distance between two points under `params` (dispatches to the road
// network when configured).
double PairDistance(const FeasibilityParams& params, const geo::Point& a,
                    const geo::Point& b);

// A worker's dynamic state at a batch timestamp: position (workers move as
// they serve tasks) and the remaining travel budget out of d_w.
struct WorkerState {
  WorkerId id = kInvalidId;
  geo::Point location;
  double remaining_distance = 0.0;

  // Snapshot of a freshly-arrived worker.
  static WorkerState Initial(const Worker& w) {
    return {w.id, w.location, w.max_distance};
  }
};

// Travel distance from the worker state to the task, under `params`.
double ServeDistance(const Instance& instance, const WorkerState& state,
                     TaskId task, const FeasibilityParams& params);

// Why a worker-task pair is infeasible. Values are ordered by how far the
// pair progressed through the constraint checks (kNone = feasible), so
// "max over workers" yields the most advanced — i.e. most informative —
// failure for a task: a task every worker fails on skill is hopeless, while
// a task some worker barely misses on arrival deadline was nearly served.
// The lifecycle ledger (sim/ledger.h) folds these into its unserved-task
// taxonomy.
enum class ServeFailure {
  kNone = 0,         // feasible
  kSkillMismatch,    // the worker lacks the task's required skill
  kWorkerDeparted,   // dispatch time past the worker's deadline
  kWindowMismatch,   // the task appears only after the worker leaves
  kTaskNotArrived,   // the task is not on the platform yet
  kOutOfRange,       // travel exceeds the worker's distance budget
  kArrivalDeadline,  // the worker would arrive after the task expires
};

// Stable lowercase name ("skill_mismatch", "out_of_range", ...).
const char* ServeFailureName(ServeFailure failure);

// The first constraint the pair fails, checked in CanServe's order (kNone
// when feasible). CanServe(...) == (ClassifyServe(...) == kNone).
ServeFailure ClassifyServe(const Instance& instance, const WorkerState& state,
                           TaskId task, double now,
                           const FeasibilityParams& params);

// Classification twin of CanServeOffline (Definition 3 static form).
ServeFailure ClassifyServeOffline(const Instance& instance, WorkerId worker,
                                  TaskId task,
                                  const FeasibilityParams& params);

// True iff the worker in `state` can serve `task` when dispatched at time
// `now` (batch semantics):
//   * skill match,
//   * the worker is still on the platform (now <= s_w + w_w) and the task
//     appeared before the worker leaves (s_t <= s_w + w_w),
//   * the task has appeared (s_t <= now),
//   * travel fits the remaining distance budget,
//   * arrival time now + dist/v_w is within the task deadline s_t + w_t.
bool CanServe(const Instance& instance, const WorkerState& state, TaskId task,
              double now, const FeasibilityParams& params);

// Static (single-batch / offline) form used by the paper's Definition 3:
// the worker departs at max(s_w, s_t) from its initial location. Equivalent
// to the paper's condition w_t - max(s_w - s_t, 0) - ct_w(l_w, l_t) >= 0
// plus s_t <= s_w + w_w.
bool CanServeOffline(const Instance& instance, WorkerId worker, TaskId task,
                     const FeasibilityParams& params);

}  // namespace dasc::core

#endif  // DASC_CORE_FEASIBILITY_H_
