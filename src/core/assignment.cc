#include "core/assignment.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace dasc::core {

namespace {

// Deduplicates pairs so that each worker and each task appears at most once
// (first occurrence wins), returning kept indices.
std::vector<size_t> ExclusivePairIndices(const Assignment& assignment) {
  std::unordered_set<WorkerId> used_workers;
  std::unordered_set<TaskId> used_tasks;
  std::vector<size_t> kept;
  const auto& pairs = assignment.pairs();
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [w, t] = pairs[i];
    if (used_workers.contains(w) || used_tasks.contains(t)) continue;
    used_workers.insert(w);
    used_tasks.insert(t);
    kept.push_back(i);
  }
  return kept;
}

}  // namespace

SplitAssignment SplitPairs(const BatchProblem& problem,
                           const Assignment& assignment) {
  DASC_CHECK(problem.instance != nullptr);
  const Instance& instance = *problem.instance;
  const auto kept = ExclusivePairIndices(assignment);

  // Tasks assigned within this batch (after exclusivity dedup).
  std::vector<uint8_t> in_batch(static_cast<size_t>(instance.num_tasks()), 0);
  if (problem.in_batch_dependency_credit) {
    for (size_t i : kept) {
      in_batch[static_cast<size_t>(assignment.pairs()[i].second)] = 1;
    }
  }

  // Because closures are transitive, a single pass suffices: if every task in
  // closure(t) is assigned (before or in-batch), then each of those tasks
  // also has its own closure assigned (closure(f) subset of closure(t)).
  SplitAssignment split;
  for (size_t i : kept) {
    const auto& [w, t] = assignment.pairs()[i];
    bool deps_met = true;
    for (TaskId f : instance.DepClosure(t)) {
      if (!problem.TaskAssignedBefore(f) && !in_batch[static_cast<size_t>(f)]) {
        deps_met = false;
        break;
      }
    }
    if (deps_met) {
      split.valid.Add(w, t);
    } else {
      split.invalid.Add(w, t);
    }
  }
  return split;
}

Assignment ValidPairs(const BatchProblem& problem,
                      const Assignment& assignment) {
  return SplitPairs(problem, assignment).valid;
}

int ValidScore(const BatchProblem& problem, const Assignment& assignment) {
  return ValidPairs(problem, assignment).size();
}

util::Status ValidateAssignment(const BatchProblem& problem,
                                const Assignment& assignment) {
  DASC_CHECK(problem.instance != nullptr);
  const Instance& instance = *problem.instance;

  // Index the batch's worker states; allocators may only assign workers that
  // are part of the batch.
  std::unordered_map<WorkerId, const WorkerState*> states;
  for (const WorkerState& s : problem.workers) states[s.id] = &s;
  std::vector<uint8_t> open(static_cast<size_t>(instance.num_tasks()), 0);
  for (TaskId t : problem.open_tasks) open[static_cast<size_t>(t)] = 1;

  std::unordered_set<WorkerId> used_workers;
  std::unordered_set<TaskId> used_tasks;
  std::vector<uint8_t> in_batch(static_cast<size_t>(instance.num_tasks()), 0);
  if (problem.in_batch_dependency_credit) {
    for (const auto& [w, t] : assignment.pairs()) {
      in_batch[static_cast<size_t>(t)] = 1;
    }
  }

  for (const auto& [w, t] : assignment.pairs()) {
    auto it = states.find(w);
    if (it == states.end()) {
      return util::Status::FailedPrecondition(
          "worker " + std::to_string(w) + " is not part of this batch");
    }
    if (t < 0 || t >= instance.num_tasks() || !open[static_cast<size_t>(t)]) {
      return util::Status::FailedPrecondition(
          "task " + std::to_string(t) + " is not open in this batch");
    }
    // Exclusive constraint.
    if (!used_workers.insert(w).second) {
      return util::Status::FailedPrecondition(
          "worker " + std::to_string(w) + " assigned to multiple tasks");
    }
    if (!used_tasks.insert(t).second) {
      return util::Status::FailedPrecondition(
          "task " + std::to_string(t) + " assigned to multiple workers");
    }
    // Skill + deadline constraints.
    if (!CanServe(instance, *it->second, t, problem.now, problem.params)) {
      return util::Status::FailedPrecondition(
          "pair (" + std::to_string(w) + ", " + std::to_string(t) +
          ") violates skill/deadline/distance feasibility");
    }
    // Dependency constraint.
    for (TaskId f : instance.DepClosure(t)) {
      if (!problem.TaskAssignedBefore(f) &&
          !in_batch[static_cast<size_t>(f)]) {
        return util::Status::FailedPrecondition(
            "task " + std::to_string(t) + " misses dependency " +
            std::to_string(f));
      }
    }
  }
  return util::Status::OK();
}

}  // namespace dasc::core
