// Incrementally maintained candidate view (DESIGN.md §17).
//
// BuildCandidates recomputes every worker→task candidate set from scratch
// each batch; at scale the front half of the batch is O(n) even when almost
// nothing changed. IncrementalCandidateView turns it into O(delta): the view
// diffs the incoming BatchProblem against the previous batch, probes the
// skill-index postings only for arrived tasks and released/moved workers,
// retracts exactly the rows invalidated by departures, closes, and
// deadline passage, and then *publishes* fresh CandidateSets/CandidateEdges
// into the problem's caches — bit-identical to what the from-scratch path
// would have produced (same orders, same travel-time bits), so every
// allocator downstream behaves identically and the equivalence is checkable
// by a disjoint from-scratch rebuild (sim/audit.cc, the
// incremental-candidates-equivalence stress oracle).
//
// Preconditions for the O(delta) path (all hold for sim::Simulator and
// sim::Service): same Instance and FeasibilityParams across batches,
// monotone non-decreasing `now`, problem.workers sorted ascending by
// WorkerId, problem.open_tasks sorted ascending. Anything else triggers the
// scratch-rebuild escape hatch (counted in
// candidate_incremental_rebuilds_total) which resyncs the view from a
// from-scratch build — never wrong, just slower.
#ifndef DASC_CORE_CANDIDATE_VIEW_H_
#define DASC_CORE_CANDIDATE_VIEW_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "core/batch.h"
#include "core/feasibility.h"
#include "core/instance.h"

namespace dasc::core {

class IncrementalCandidateView {
 public:
  explicit IncrementalCandidateView(const Instance& instance);

  // Brings the view in sync with `problem` (diff against the previous call)
  // and publishes fresh candidates/edges caches into it. After Update,
  // problem.Candidates() / problem.Edges() return the incremental view;
  // `problem` itself is not otherwise mutated.
  void Update(BatchProblem& problem);

  // Fault injection for the conformance harness: silently skip the next
  // single retraction (a task-close row clear or one deadline-expired edge),
  // leaving a stale edge for the equivalence checker to catch.
  void InjectStaleCandidate() { inject_pending_ = true; }

  // Introspection (tests / bench).
  int64_t adds_total() const { return adds_total_; }
  int64_t retracts_total() const { return retracts_total_; }
  int64_t rebuilds_total() const { return rebuilds_total_; }
  int64_t updates_total() const { return updates_total_; }
  // Batches where the previous publish was re-stamped verbatim (no row
  // changed, identical worker-id column space).
  int64_t publish_reuses() const { return publish_reuses_; }
  // Monotone id stamped into every published CandidateEdges::publish_seq.
  int64_t publish_seq() const { return publish_seq_; }
  // Global generation: bumped once per Update (stamp source for postings).
  uint32_t generation() const { return generation_; }

 private:
  struct Edge {
    WorkerId worker = kInvalidId;
    double travel_time = 0.0;  // ServeDistance / velocity, probe-time bits
  };
  // Skill-index posting entry; valid iff `gen` matches the owner's current
  // generation stamp (lazy deletion, compacted when mostly stale).
  struct Posting {
    int32_t id = kInvalidId;
    uint32_t gen = 0;
  };
  struct ExpiryEntry {
    double key = 0.0;  // conservative flip time: Expiry() - travel_time
    TaskId task = kInvalidId;
    WorkerId worker = kInvalidId;
  };
  struct ExpiryLater {
    bool operator()(const ExpiryEntry& a, const ExpiryEntry& b) const {
      return a.key > b.key;  // min-heap on key
    }
  };

  bool PreconditionsHold(const BatchProblem& problem) const;
  void FullRebuild(BatchProblem& problem);
  void IncrementalUpdate(BatchProblem& problem);
  void Publish(BatchProblem& problem);
  bool CanReusePublish(const BatchProblem& problem) const;
  void ReusePublish(BatchProblem& problem);
  void RememberPublish(const BatchProblem& problem);

  void RetractWorker(WorkerId w);
  void RetractTask(TaskId t);
  void ProbeWorker(WorkerId w, double now, const FeasibilityParams& params);
  void ProbeTask(TaskId t, double now, const FeasibilityParams& params);
  void ExpireEdges(double now);
  void Touch(TaskId t);
  void PushExpiry(TaskId t, WorkerId w, double tt);
  void CompactWorkerPosting(SkillId s);
  void CompactTaskPosting(SkillId s);

  const Instance* instance_ = nullptr;
  FeasibilityParams params_;
  bool synced_ = false;
  double last_now_ = 0.0;

  // Live candidate store: rows_[t] is task t's edge list sorted ascending by
  // WorkerId; non-empty only for open, arrived tasks (exactly the rows the
  // scratch build would produce). worker_rows_[w] lists tasks where w *may*
  // hold an edge — stale-tolerant (row clears don't update it), consulted
  // only for O(degree) worker retraction.
  std::vector<std::vector<Edge>> rows_;
  std::vector<std::vector<TaskId>> worker_rows_;

  // Per-entity generation stamps: bumped on retraction, so postings carrying
  // an older stamp are dead (DESIGN.md §17 invariant: a posting entry is
  // live iff its stamp equals the entity's current stamp).
  std::vector<uint32_t> worker_gen_;
  std::vector<uint32_t> task_gen_;

  // Last-known per-worker batch state (valid when worker_present_[w] != 0).
  std::vector<WorkerState> worker_state_;
  std::vector<uint8_t> worker_present_;
  std::vector<WorkerId> present_list_;  // sorted ascending, previous batch
  std::vector<uint32_t> seen_stamp_;    // per worker, == generation_ if seen

  // Task lifecycle: open_list_ mirrors the previous batch's open_tasks;
  // deferred_[t] marks open tasks not yet arrived (start_time > now) which
  // get their full probe when their start time passes.
  std::vector<TaskId> open_list_;
  std::vector<uint8_t> open_;
  std::vector<uint8_t> deferred_;
  std::vector<TaskId> deferred_list_;

  // Skill inverted indexes with lazy deletion: idle workers by skill, open
  // arrived tasks by required skill.
  std::vector<std::vector<Posting>> skill_workers_;
  std::vector<std::vector<Posting>> skill_tasks_;
  std::vector<int32_t> stale_worker_postings_;
  std::vector<int32_t> stale_task_postings_;

  // Deadline-driven retraction: edges expire as `now` crosses
  // Expiry - travel_time. Keys are conservative (popped slightly early and
  // re-checked with CanServe's exact arithmetic), entries may be stale.
  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>, ExpiryLater>
      expiry_;

  // Rows mutated since the previous publish (drives row_unchanged prefill).
  std::vector<uint8_t> touched_;
  std::vector<TaskId> touched_list_;

  // Scratch buffers.
  std::vector<int32_t> index_of_worker_;
  std::vector<WorkerId> probe_workers_;
  std::vector<TaskId> probe_tasks_;
  std::vector<ExpiryEntry> expiry_survivors_;

  // Previous publish, retained for the zero-delta fast path: when no row was
  // touched and the worker-id column space is identical, the previous
  // objects are bit-identical to what Publish would rebuild, so they are
  // re-stamped and republished without reallocating ~2(n+m) vectors.
  std::shared_ptr<const CandidateSets> last_sets_;
  std::shared_ptr<CandidateEdges> last_edges_;
  std::vector<WorkerId> last_worker_ids_;

  // Retired publish buffers, recycled (inner capacity and all) once every
  // external reference has dropped (use_count() == 1). Fixed-size ring: a
  // slot still aliased by a consumer is replaced with a fresh allocation.
  static constexpr size_t kPublishRing = 3;
  std::vector<std::shared_ptr<CandidateSets>> sets_ring_;
  std::vector<std::shared_ptr<CandidateEdges>> edges_ring_;
  size_t ring_next_ = 0;

  uint32_t generation_ = 0;
  int64_t publish_seq_ = -1;
  int64_t adds_total_ = 0;
  int64_t retracts_total_ = 0;
  int64_t rebuilds_total_ = 0;
  int64_t updates_total_ = 0;
  int64_t publish_reuses_ = 0;
  bool inject_pending_ = false;
};

}  // namespace dasc::core

#endif  // DASC_CORE_CANDIDATE_VIEW_H_
