// Heterogeneous worker (paper Definition 1).
#ifndef DASC_CORE_WORKER_H_
#define DASC_CORE_WORKER_H_

#include <algorithm>
#include <vector>

#include "core/types.h"
#include "geo/point.h"

namespace dasc::core {

// w = <l_w, s_w, w_w, v_w, d_w, WS_w>: a worker appears at `location` at
// `start_time`, waits at most `wait_time` for an assignment, moves with
// `velocity`, travels at most `max_distance`, and practices `skills`.
struct Worker {
  WorkerId id = kInvalidId;
  geo::Point location;
  double start_time = 0.0;
  double wait_time = 0.0;
  double velocity = 1.0;
  double max_distance = 0.0;
  // Sorted ascending and deduplicated (Instance::Create canonicalizes).
  std::vector<SkillId> skills;

  // Last moment the worker accepts assignments (s_w + w_w).
  double Deadline() const { return start_time + wait_time; }

  // True iff the worker practices skill `s`. O(log |skills|).
  bool HasSkill(SkillId s) const {
    return std::binary_search(skills.begin(), skills.end(), s);
  }
};

}  // namespace dasc::core

#endif  // DASC_CORE_WORKER_H_
