#include "core/workload_stats.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

namespace dasc::core {

WorkloadStats AnalyzeWorkload(const Instance& instance,
                              const FeasibilityParams& params) {
  WorkloadStats stats;
  stats.num_workers = instance.num_workers();
  stats.num_tasks = instance.num_tasks();
  stats.num_skills = instance.num_skills();
  if (instance.num_workers() == 0 && instance.num_tasks() == 0) return stats;

  // Skill histogram over workers.
  std::vector<int> skill_holders(static_cast<size_t>(instance.num_skills()),
                                 0);
  int64_t total_skills = 0;
  for (const Worker& w : instance.workers()) {
    total_skills += static_cast<int64_t>(w.skills.size());
    for (SkillId s : w.skills) ++skill_holders[static_cast<size_t>(s)];
  }
  if (instance.num_workers() > 0) {
    stats.mean_worker_skills =
        static_cast<double>(total_skills) / instance.num_workers();
  }

  // Temporal horizon and windows.
  stats.horizon_begin = std::numeric_limits<double>::infinity();
  stats.horizon_end = -std::numeric_limits<double>::infinity();
  double task_window_sum = 0.0;
  double worker_window_sum = 0.0;
  for (const Worker& w : instance.workers()) {
    stats.horizon_begin = std::min(stats.horizon_begin, w.start_time);
    stats.horizon_end = std::max(stats.horizon_end, w.Deadline());
    worker_window_sum += w.wait_time;
  }
  for (const Task& t : instance.tasks()) {
    stats.horizon_begin = std::min(stats.horizon_begin, t.start_time);
    stats.horizon_end = std::max(stats.horizon_end, t.Expiry());
    task_window_sum += t.wait_time;
  }
  if (instance.num_tasks() > 0) {
    stats.mean_task_window = task_window_sum / instance.num_tasks();
  }
  if (instance.num_workers() > 0) {
    stats.mean_worker_window = worker_window_sum / instance.num_workers();
  }

  // Per-task: skill coverability, offline feasibility, dependency shape.
  int64_t candidate_sum = 0;
  int64_t closure_sum = 0;
  for (const Task& t : instance.tasks()) {
    if (skill_holders[static_cast<size_t>(t.required_skill)] > 0) {
      ++stats.skill_coverable_tasks;
    }
    int candidates = 0;
    for (const Worker& w : instance.workers()) {
      if (CanServeOffline(instance, w.id, t.id, params)) ++candidates;
    }
    candidate_sum += candidates;
    if (candidates > 0) ++stats.feasible_tasks;

    const auto& closure = instance.DepClosure(t.id);
    closure_sum += static_cast<int64_t>(closure.size());
    stats.max_closure =
        std::max(stats.max_closure, static_cast<int>(closure.size()));
    if (closure.empty()) ++stats.dependency_free_tasks;
    bool ordered = true;
    for (TaskId f : closure) {
      if (instance.task(f).start_time > t.start_time) {
        ordered = false;
        break;
      }
    }
    if (ordered) ++stats.temporally_ordered_tasks;
  }
  if (instance.num_tasks() > 0) {
    stats.mean_candidates_per_task =
        static_cast<double>(candidate_sum) / instance.num_tasks();
    stats.mean_closure =
        static_cast<double>(closure_sum) / instance.num_tasks();
  }
  return stats;
}

std::string WorkloadStats::ToString() const {
  std::ostringstream out;
  out << "workers=" << num_workers << " tasks=" << num_tasks
      << " skills=" << num_skills << "\n"
      << "skills/worker=" << mean_worker_skills
      << " skill-coverable tasks=" << skill_coverable_tasks << "\n"
      << "horizon=[" << horizon_begin << ", " << horizon_end << "]"
      << " task window=" << mean_task_window
      << " worker window=" << mean_worker_window << "\n"
      << "offline-feasible tasks=" << feasible_tasks
      << " candidates/task=" << mean_candidates_per_task << "\n"
      << "closure: mean=" << mean_closure << " max=" << max_closure
      << " dep-free=" << dependency_free_tasks
      << " temporally-ordered=" << temporally_ordered_tasks;
  return out.str();
}

}  // namespace dasc::core
