#include "core/batch.h"

#include <algorithm>

#include "geo/grid_index.h"
#include "util/logging.h"

namespace dasc::core {

BatchProblem BatchProblem::AllAt(const Instance& instance, double now) {
  BatchProblem problem;
  problem.instance = &instance;
  problem.now = now;
  problem.workers.reserve(static_cast<size_t>(instance.num_workers()));
  for (const Worker& w : instance.workers()) {
    problem.workers.push_back(WorkerState::Initial(w));
  }
  problem.open_tasks.resize(static_cast<size_t>(instance.num_tasks()));
  for (int t = 0; t < instance.num_tasks(); ++t) {
    problem.open_tasks[static_cast<size_t>(t)] = t;
  }
  problem.assigned_before.assign(static_cast<size_t>(instance.num_tasks()), 0);
  return problem;
}

CandidateSets BuildCandidates(const BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  const Instance& instance = *problem.instance;
  CandidateSets sets;
  sets.worker_tasks.resize(problem.workers.size());
  sets.task_workers.resize(static_cast<size_t>(instance.num_tasks()));

  const bool use_grid =
      problem.params.distance_kind == geo::DistanceKind::kEuclidean &&
      problem.open_tasks.size() >= 64;

  if (use_grid) {
    std::vector<geo::Point> locations;
    locations.reserve(problem.open_tasks.size());
    for (TaskId t : problem.open_tasks) {
      locations.push_back(instance.task(t).location);
    }
    geo::GridIndex index(locations);
    std::vector<int32_t> hits;
    for (size_t i = 0; i < problem.workers.size(); ++i) {
      const WorkerState& state = problem.workers[i];
      hits.clear();
      index.QueryRadius(state.location, state.remaining_distance, &hits);
      auto& out = sets.worker_tasks[i];
      for (int32_t local : hits) {
        const TaskId t = problem.open_tasks[static_cast<size_t>(local)];
        if (CanServe(instance, state, t, problem.now, problem.params)) {
          out.push_back(t);
        }
      }
      std::sort(out.begin(), out.end());
    }
  } else {
    for (size_t i = 0; i < problem.workers.size(); ++i) {
      const WorkerState& state = problem.workers[i];
      auto& out = sets.worker_tasks[i];
      for (TaskId t : problem.open_tasks) {
        if (CanServe(instance, state, t, problem.now, problem.params)) {
          out.push_back(t);
        }
      }
    }
  }

  for (size_t i = 0; i < sets.worker_tasks.size(); ++i) {
    for (TaskId t : sets.worker_tasks[i]) {
      sets.task_workers[static_cast<size_t>(t)].push_back(
          static_cast<int>(i));
      ++sets.num_pairs;
    }
  }
  return sets;
}

}  // namespace dasc::core
