#include "core/batch.h"

#include <algorithm>

#include "geo/grid_index.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/tracing.h"

namespace dasc::core {

namespace {

// Workers per ParallelFor chunk. Candidate generation is ~1us per worker at
// paper scale; 64 workers per chunk keeps dispatch overhead under 2% while
// still splitting Table V batches (hundreds of idle workers) across the
// pool.
constexpr int64_t kWorkerGrain = 64;

// Path selection for candidate generation, replacing the historical
// hard-coded `open_tasks.size() >= 64` grid cutoff. Both index structures
// bottom out in CanServe probes, so we compare probe counts directly:
//   * skill inverted index — probes exactly sum_w sum_{s in WS_w} count[s]
//     (count[s] = open tasks requiring skill s), computable up front in
//     O(m + sum |WS_w|);
//   * grid — ~2 probes per open task to build, plus for each worker the
//     open tasks inside its reach circle, estimated as m * min(1,
//     pi*r_w^2 / bbox_area).
// Measured on both paper families (400-800 workers, 8-1024 open tasks,
// 3000 reps each; see PR notes): the skill index wins everywhere the
// workloads' skill selectivity beats their spatial selectivity — Table V
// synthetic (|WS_w| <= 15 of 1500 skills, reach covering most of the area):
// grid 95-3800us vs skill 19-425us per build; Meetup (<= 6 of 500 tags,
// tight 0.03 reach in a 0.44x0.40 box): grid 36-4100us vs skill 17-900us.
// A fixed task-count cutoff cannot capture that trade-off; the probe-count
// comparison picks the grid exactly when workers are broadly skilled but
// spatially confined, and costs O(n + m) per batch.
struct CandidatePathChoice {
  bool use_grid = false;
  double grid_probes = 0.0;   // estimate; 0 when the grid was ruled out early
  double skill_probes = 0.0;  // exact probe count for the skill index
};

CandidatePathChoice ChooseCandidatePath(const BatchProblem& problem) {
  CandidatePathChoice choice;
  if (problem.params.distance_kind != geo::DistanceKind::kEuclidean) {
    return choice;  // the grid prunes by Euclidean radius only
  }
  const Instance& instance = *problem.instance;
  const double m = static_cast<double>(problem.open_tasks.size());
  if (problem.open_tasks.empty() || problem.workers.empty()) return choice;

  std::vector<int32_t> count(static_cast<size_t>(instance.num_skills()), 0);
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  bool first = true;
  for (TaskId t : problem.open_tasks) {
    const Task& task = instance.task(t);
    ++count[static_cast<size_t>(task.required_skill)];
    if (first) {
      min_x = max_x = task.location.x;
      min_y = max_y = task.location.y;
      first = false;
    } else {
      min_x = std::min(min_x, task.location.x);
      max_x = std::max(max_x, task.location.x);
      min_y = std::min(min_y, task.location.y);
      max_y = std::max(max_y, task.location.y);
    }
  }
  const double area =
      std::max((max_x - min_x) * (max_y - min_y), 1e-12);

  double skill_probes = 0.0;
  double grid_probes = 2.0 * m;  // index build: counting + CSR fill passes
  for (const WorkerState& state : problem.workers) {
    for (SkillId s : instance.worker(state.id).skills) {
      skill_probes += count[static_cast<size_t>(s)];
    }
    const double r = state.remaining_distance;
    grid_probes += m * std::min(1.0, 3.141592653589793 * r * r / area);
  }
  choice.grid_probes = grid_probes;
  choice.skill_probes = skill_probes;
  choice.use_grid = grid_probes < skill_probes;
  return choice;
}

}  // namespace

BatchProblem BatchProblem::AllAt(const Instance& instance, double now) {
  BatchProblem problem;
  problem.instance = &instance;
  problem.now = now;
  problem.workers.reserve(static_cast<size_t>(instance.num_workers()));
  for (const Worker& w : instance.workers()) {
    problem.workers.push_back(WorkerState::Initial(w));
  }
  problem.open_tasks.resize(static_cast<size_t>(instance.num_tasks()));
  for (int t = 0; t < instance.num_tasks(); ++t) {
    problem.open_tasks[static_cast<size_t>(t)] = t;
  }
  problem.assigned_before.assign(static_cast<size_t>(instance.num_tasks()), 0);
  return problem;
}

const CandidateSets& BatchProblem::Candidates() const {
  if (candidates_cache == nullptr) {
    candidates_cache =
        std::make_shared<const CandidateSets>(BuildCandidates(*this));
  }
  return *candidates_cache;
}

const CandidateEdges& BatchProblem::Edges() const {
  if (edges_cache == nullptr) {
    edges_cache = std::make_shared<CandidateEdges>(BuildCandidateEdges(*this));
  }
  return *edges_cache;
}

void BatchProblem::MarkEdgesUnchangedSince(
    const CandidateEdges& prev,
    const std::vector<WorkerId>& prev_worker_ids) const {
  Edges();
  CandidateEdges& cur = *edges_cache;
  const size_t num_tasks = cur.row_begin.size() - 1;
  cur.row_unchanged.assign(num_tasks, 0);
  if (prev.row_begin.size() != cur.row_begin.size()) return;

  // Rows are independent, so the compare parallelizes bit-identically, same
  // as the fill in BuildCandidateEdges. Worker identity is by instance-global
  // id: the worker-index column space is rebuilt every batch, so equal
  // indices mean nothing across batches.
  constexpr int64_t kTaskGrain = 256;
  util::ParallelFor(
      0, static_cast<int64_t>(num_tasks), kTaskGrain,
      [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
          const int64_t b = cur.row_begin[static_cast<size_t>(t)];
          const int64_t e = cur.row_begin[static_cast<size_t>(t) + 1];
          const int64_t pb = prev.row_begin[static_cast<size_t>(t)];
          const int64_t pe = prev.row_begin[static_cast<size_t>(t) + 1];
          if (e - b != pe - pb) continue;
          bool same = true;
          for (int64_t k = 0; same && k < e - b; ++k) {
            const auto ci = static_cast<size_t>(b + k);
            const auto pi = static_cast<size_t>(pb + k);
            const WorkerId cur_id =
                workers[static_cast<size_t>(cur.workers[ci])].id;
            const WorkerId prev_id =
                prev_worker_ids[static_cast<size_t>(prev.workers[pi])];
            same = cur_id == prev_id &&
                   cur.travel_time[ci] == prev.travel_time[pi];
          }
          cur.row_unchanged[static_cast<size_t>(t)] = same ? 1 : 0;
        }
      });
}

CandidateEdges BuildCandidateEdges(const BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  const Instance& instance = *problem.instance;
  const CandidateSets& sets = problem.Candidates();

  CandidateEdges edges;
  edges.num_workers = static_cast<int>(problem.workers.size());
  const size_t num_tasks = static_cast<size_t>(instance.num_tasks());
  edges.row_begin.assign(num_tasks + 1, 0);
  for (size_t t = 0; t < num_tasks; ++t) {
    edges.row_begin[t + 1] =
        edges.row_begin[t] +
        static_cast<int64_t>(sets.task_workers[t].size());
  }
  const int64_t total = edges.row_begin[num_tasks];
  edges.workers.resize(static_cast<size_t>(total));
  edges.travel_time.resize(static_cast<size_t>(total));

  // Rows are disjoint, so the fill parallelizes over tasks bit-identically.
  // Travel time is the cost the matching step has always charged:
  // ServeDistance (current position -> [dependency detour ->] task) divided
  // by the worker's velocity.
  constexpr int64_t kTaskGrain = 256;
  util::ParallelFor(
      0, static_cast<int64_t>(num_tasks), kTaskGrain,
      [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
          int64_t e = edges.row_begin[static_cast<size_t>(t)];
          for (int wi : sets.task_workers[static_cast<size_t>(t)]) {
            const WorkerState& state =
                problem.workers[static_cast<size_t>(wi)];
            const double dist = ServeDistance(
                instance, state, static_cast<TaskId>(t), problem.params);
            edges.workers[static_cast<size_t>(e)] = wi;
            edges.travel_time[static_cast<size_t>(e)] =
                dist / instance.worker(state.id).velocity;
            ++e;
          }
        }
      });
  return edges;
}

CandidateSets BuildCandidates(const BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  const Instance& instance = *problem.instance;
  DASC_TRACE_SPAN_N("candidate_build",
                    static_cast<int64_t>(problem.workers.size()));
  DASC_FLIGHT_SPAN("candidate_build");
  CandidateSets sets;
  sets.worker_tasks.resize(problem.workers.size());
  sets.task_workers.resize(static_cast<size_t>(instance.num_tasks()));

  const CandidatePathChoice choice = ChooseCandidatePath(problem);
  const bool use_grid = choice.use_grid;
  if (use_grid) {
    DASC_METRIC_COUNTER_INC("candidates_grid_builds_total");
  } else {
    DASC_METRIC_COUNTER_INC("candidates_skill_builds_total");
  }
  DASC_METRIC_GAUGE_SET("candidates_grid_probes_est", choice.grid_probes);
  DASC_METRIC_GAUGE_SET("candidates_skill_probes_est", choice.skill_probes);

  // Each branch fills worker_tasks[i] for its own disjoint worker range
  // only; the shared index structures are read-only, so every thread count
  // produces bit-identical worker_tasks.
  if (use_grid) {
    std::vector<geo::Point> locations;
    locations.reserve(problem.open_tasks.size());
    for (TaskId t : problem.open_tasks) {
      locations.push_back(instance.task(t).location);
    }
    const geo::GridIndex index(locations);
    util::ParallelFor(
        0, static_cast<int64_t>(problem.workers.size()), kWorkerGrain,
        [&](int64_t lo, int64_t hi) {
          std::vector<int32_t> hits;
          int64_t probes = 0;  // accumulated locally, one counter add per chunk
          for (int64_t i = lo; i < hi; ++i) {
            const WorkerState& state = problem.workers[static_cast<size_t>(i)];
            hits.clear();
            index.QueryRadius(state.location, state.remaining_distance, &hits);
            probes += static_cast<int64_t>(hits.size());
            auto& out = sets.worker_tasks[static_cast<size_t>(i)];
            for (int32_t local : hits) {
              const TaskId t = problem.open_tasks[static_cast<size_t>(local)];
              if (CanServe(instance, state, t, problem.now, problem.params)) {
                out.push_back(t);
              }
            }
            std::sort(out.begin(), out.end());
          }
          DASC_METRIC_COUNTER_ADD("candidates_probes_total", probes);
        });
  } else {
    // Skill inverted index: a worker only ever serves tasks requiring one of
    // its skills, so scan those lists instead of every open task. rank_of
    // restores the open_tasks iteration order of the plain scan, keeping the
    // output identical to the pre-index implementation.
    std::vector<std::vector<TaskId>> skill_tasks(
        static_cast<size_t>(instance.num_skills()));
    std::vector<int32_t> rank_of(static_cast<size_t>(instance.num_tasks()),
                                 -1);
    for (size_t r = 0; r < problem.open_tasks.size(); ++r) {
      const TaskId t = problem.open_tasks[r];
      rank_of[static_cast<size_t>(t)] = static_cast<int32_t>(r);
      skill_tasks[static_cast<size_t>(instance.task(t).required_skill)]
          .push_back(t);
    }
    util::ParallelFor(
        0, static_cast<int64_t>(problem.workers.size()), kWorkerGrain,
        [&](int64_t lo, int64_t hi) {
          int64_t probes = 0;  // accumulated locally, one counter add per chunk
          for (int64_t i = lo; i < hi; ++i) {
            const WorkerState& state = problem.workers[static_cast<size_t>(i)];
            auto& out = sets.worker_tasks[static_cast<size_t>(i)];
            const Worker& w = instance.worker(state.id);
            for (SkillId s : w.skills) {
              probes +=
                  static_cast<int64_t>(skill_tasks[static_cast<size_t>(s)].size());
              for (TaskId t : skill_tasks[static_cast<size_t>(s)]) {
                if (CanServe(instance, state, t, problem.now,
                             problem.params)) {
                  out.push_back(t);
                }
              }
            }
            if (w.skills.size() > 1) {
              std::sort(out.begin(), out.end(), [&](TaskId a, TaskId b) {
                return rank_of[static_cast<size_t>(a)] <
                       rank_of[static_cast<size_t>(b)];
              });
            }
          }
          DASC_METRIC_COUNTER_ADD("candidates_probes_total", probes);
        });
  }

  // Deterministic merge: task_workers is assembled on the calling thread in
  // ascending worker-index order, exactly as the serial implementation did.
  for (size_t i = 0; i < sets.worker_tasks.size(); ++i) {
    for (TaskId t : sets.worker_tasks[i]) {
      sets.task_workers[static_cast<size_t>(t)].push_back(
          static_cast<int>(i));
      ++sets.num_pairs;
    }
  }
  DASC_METRIC_COUNTER_ADD("candidates_pairs_total", sets.num_pairs);
  return sets;
}

ServeFailure ClassifyBatchTaskFailure(const BatchProblem& problem,
                                      TaskId task) {
  DASC_CHECK(problem.instance != nullptr);
  DASC_CHECK(!problem.workers.empty());
  // Max over workers = the most advanced stage any worker reached; the
  // candidate probe loops cannot supply this (the skill-index path never
  // probes workers lacking the skill), hence the dedicated scan.
  ServeFailure best = ServeFailure::kSkillMismatch;
  for (const WorkerState& state : problem.workers) {
    const ServeFailure f =
        ClassifyServe(*problem.instance, state, task, problem.now,
                      problem.params);
    if (f == ServeFailure::kNone) return ServeFailure::kNone;
    best = std::max(best, f);
  }
  return best;
}

}  // namespace dasc::core
