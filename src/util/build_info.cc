#include "util/build_info.h"

#include "util/json.h"
#include "util/metrics.h"

// Configure-time provenance, defined by src/CMakeLists.txt for this file
// only. Fallbacks keep non-CMake builds (and IDE parses) compiling.
#ifndef DASC_BUILD_VERSION
#define DASC_BUILD_VERSION "unknown"
#endif
#ifndef DASC_BUILD_GIT_SHA
#define DASC_BUILD_GIT_SHA "unknown"
#endif
#ifndef DASC_BUILD_TYPE
#define DASC_BUILD_TYPE "unknown"
#endif

namespace dasc::util {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* const info = new BuildInfo{
      DASC_BUILD_VERSION, DASC_BUILD_GIT_SHA, DASC_BUILD_TYPE};
  return *info;
}

std::string BuildInfoMetricName() {
  const BuildInfo& info = GetBuildInfo();
  return "dasc_build_info{version=\"" + info.version + "\",git_sha=\"" +
         info.git_sha + "\",build_type=\"" + info.build_type + "\"}";
}

void RegisterBuildInfoMetric(MetricsRegistry* registry) {
  MetricsRegistry& target =
      registry != nullptr ? *registry : GlobalMetrics();
  target.GetGauge(BuildInfoMetricName())->Set(1.0);
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  return "{\"version\":\"" + JsonEscape(info.version) + "\",\"git_sha\":\"" +
         JsonEscape(info.git_sha) + "\",\"build_type\":\"" +
         JsonEscape(info.build_type) + "\"}";
}

}  // namespace dasc::util
