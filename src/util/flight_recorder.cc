#include "util/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/json.h"

namespace dasc::util {

namespace {

// One recording thread's bounded event ring. Registered globally and never
// destroyed, so a dump can still read events from exited threads; the mutex
// only contends with dumps.
struct FlightRing {
  std::mutex mu;
  std::vector<FlightEvent> events;  // fixed capacity, slot = seq % capacity
  int64_t seq = 0;                  // events ever appended to this ring
  int thread_index = 0;
};

struct FlightState {
  std::atomic<bool> enabled{true};
  std::atomic<size_t> ring_capacity{FlightRecorder::kDefaultRingCapacity};

  std::mutex mu;  // guards rings and labels
  std::vector<std::unique_ptr<FlightRing>> rings;
  std::vector<std::string> labels{""};  // id 0 reserved
  std::map<std::string, uint32_t> label_ids;

  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

FlightState& State() {
  static FlightState* const state = new FlightState();
  return *state;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - State().epoch)
      .count();
}

FlightRing& ThreadRing() {
  thread_local FlightRing* ring = [] {
    FlightState& state = State();
    auto owned = std::make_unique<FlightRing>();
    owned->events.resize(
        std::max<size_t>(1, state.ring_capacity.load(std::memory_order_relaxed)));
    FlightRing* raw = owned.get();
    std::lock_guard<std::mutex> lock(state.mu);
    raw->thread_index = static_cast<int>(state.rings.size());
    state.rings.push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

// Per-thread phase self-time accumulation for FlightSpan: ns_by_label holds
// self time per interned label; child_ns_stack tracks nested span time so
// an enclosing span only counts time not covered by its children.
struct ThreadPhaseState {
  std::vector<int64_t> ns_by_label;
  std::vector<int64_t> child_ns_stack;
};

ThreadPhaseState& PhaseState() {
  thread_local ThreadPhaseState* state = new ThreadPhaseState();
  return *state;
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kBatchBegin:
      return "batch_begin";
    case FlightEventKind::kBatchEnd:
      return "batch_end";
    case FlightEventKind::kPhaseBegin:
      return "phase_begin";
    case FlightEventKind::kPhaseEnd:
      return "phase_end";
    case FlightEventKind::kDecision:
      return "decision";
    case FlightEventKind::kAnomaly:
      return "anomaly";
    case FlightEventKind::kMark:
      return "mark";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::SetEnabled(bool enabled) {
  State().enabled.store(enabled, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const {
  return State().enabled.load(std::memory_order_relaxed);
}

void FlightRecorder::SetRingCapacity(size_t capacity) {
  State().ring_capacity.store(std::max<size_t>(1, capacity),
                              std::memory_order_relaxed);
}

uint32_t FlightRecorder::InternLabel(const std::string& name) {
  FlightState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto [it, inserted] = state.label_ids.emplace(
      name, static_cast<uint32_t>(state.labels.size()));
  if (inserted) state.labels.push_back(name);
  return it->second;
}

std::string FlightRecorder::LabelName(uint32_t label) const {
  FlightState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (label >= state.labels.size()) return "";
  return state.labels[label];
}

void FlightRecorder::Record(FlightEventKind kind, uint32_t label, int64_t a,
                            int64_t b) {
  if (!enabled()) return;
  FlightEvent event;
  event.t_ns = NowNanos();
  event.kind = static_cast<uint32_t>(kind);
  event.label = label;
  event.a = a;
  event.b = b;
  FlightRing& ring = ThreadRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events[static_cast<size_t>(ring.seq) % ring.events.size()] = event;
  ring.seq += 1;
}

void FlightRecorder::WriteJsonl(std::ostream& out,
                                const std::string& reason) const {
  FlightState& state = State();
  // Copy surviving events and the label table under the locks, then format
  // outside them.
  std::vector<std::pair<int, FlightEvent>> events;  // (thread_index, event)
  std::vector<std::string> labels;
  int64_t total_recorded = 0;
  int64_t total_dropped = 0;
  size_t threads = 0;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    labels = state.labels;
    threads = state.rings.size();
    for (const auto& ring : state.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      total_recorded += ring->seq;
      const int64_t capacity = static_cast<int64_t>(ring->events.size());
      const int64_t kept = std::min(ring->seq, capacity);
      total_dropped += ring->seq - kept;
      for (int64_t i = ring->seq - kept; i < ring->seq; ++i) {
        events.emplace_back(ring->thread_index,
                            ring->events[static_cast<size_t>(i % capacity)]);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& x, const auto& y) {
                     return x.second.t_ns < y.second.t_ns;
                   });
  out << "{\"type\":\"flight\",\"schema\":\"dasc-flight/1\",\"reason\":\""
      << JsonEscape(reason) << "\",\"events\":" << events.size()
      << ",\"recorded\":" << total_recorded
      << ",\"dropped\":" << total_dropped << ",\"threads\":" << threads
      << ",\"labels\":[";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(labels[i]) << "\"";
  }
  out << "]}\n";
  for (const auto& [thread_index, event] : events) {
    const char* kind =
        FlightEventKindName(static_cast<FlightEventKind>(event.kind));
    out << "{\"type\":\"event\",\"t_ns\":" << event.t_ns
        << ",\"thread\":" << thread_index << ",\"kind\":\"" << kind << "\"";
    if (event.label != 0 && event.label < labels.size()) {
      out << ",\"label\":\"" << JsonEscape(labels[event.label]) << "\"";
    }
    out << ",\"a\":" << event.a << ",\"b\":" << event.b << "}\n";
  }
}

std::string FlightRecorder::DumpJsonl(const std::string& reason) const {
  std::ostringstream out;
  WriteJsonl(out, reason);
  return out.str();
}

Status FlightRecorder::DumpToFile(const std::string& path,
                                  const std::string& reason) const {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("flight recorder: cannot write " + path);
  }
  WriteJsonl(out, reason);
  out.flush();
  if (!out) {
    return Status::Internal("flight recorder: write to " + path + " failed");
  }
  return Status::OK();
}

int64_t FlightRecorder::recorded() const {
  FlightState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  int64_t total = 0;
  for (const auto& ring : state.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->seq;
  }
  return total;
}

int64_t FlightRecorder::dropped() const {
  FlightState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  int64_t total = 0;
  for (const auto& ring : state.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->seq -
             std::min(ring->seq, static_cast<int64_t>(ring->events.size()));
  }
  return total;
}

FlightSpan::FlightSpan(uint32_t label, int64_t a) {
  if (!FlightRecorder::Global().enabled()) return;
  active_ = true;
  label_ = label;
  a_ = a;
  begin_ns_ = NowNanos();
  PhaseState().child_ns_stack.push_back(0);
  FlightRecorder::Global().Record(FlightEventKind::kPhaseBegin, label, a);
}

FlightSpan::~FlightSpan() {
  if (!active_) return;
  const int64_t elapsed = NowNanos() - begin_ns_;
  ThreadPhaseState& phase = PhaseState();
  // A SetEnabled(false) racing the span could leave the stack empty; guard
  // rather than assume balance.
  int64_t child_ns = 0;
  if (!phase.child_ns_stack.empty()) {
    child_ns = phase.child_ns_stack.back();
    phase.child_ns_stack.pop_back();
  }
  if (!phase.child_ns_stack.empty()) {
    phase.child_ns_stack.back() += elapsed;
  }
  if (phase.ns_by_label.size() <= label_) {
    phase.ns_by_label.resize(static_cast<size_t>(label_) + 1, 0);
  }
  phase.ns_by_label[label_] += std::max<int64_t>(0, elapsed - child_ns);
  FlightRecorder::Global().Record(FlightEventKind::kPhaseEnd, label_, a_,
                                  elapsed);
}

std::vector<std::pair<uint32_t, int64_t>> TakeThreadPhaseNanos() {
  ThreadPhaseState& phase = PhaseState();
  std::vector<std::pair<uint32_t, int64_t>> taken;
  for (size_t label = 0; label < phase.ns_by_label.size(); ++label) {
    if (phase.ns_by_label[label] > 0) {
      taken.emplace_back(static_cast<uint32_t>(label),
                         phase.ns_by_label[label]);
      phase.ns_by_label[label] = 0;
    }
  }
  return taken;
}

}  // namespace dasc::util
