#include "util/csv.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "util/logging.h"

namespace dasc::util {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  if (!rows_.empty()) {
    DASC_CHECK_EQ(cells.size(), rows_.front().size())
        << "row width must match header width";
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& out) const {
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  if (rows_.empty()) return;
  const size_t cols = rows_.front().size();
  std::vector<size_t> width(cols, 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < cols; ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < cols; ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    out << "\n";
  };
  print_row(rows_.front());
  size_t total = 0;
  for (size_t c = 0; c < cols; ++c) total += width[c] + 2;
  out << std::string(total, '-') << "\n";
  for (size_t r = 1; r < rows_.size(); ++r) print_row(rows_[r]);
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  }
}

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char ch : field) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

}  // namespace dasc::util
