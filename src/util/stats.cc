#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dasc::util {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentiles::Quantile(double q) const {
  DASC_CHECK_GE(q, 0.0);
  DASC_CHECK_LE(q, 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

}  // namespace dasc::util
