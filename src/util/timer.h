// Wall-clock timer for experiment timing.
#ifndef DASC_UTIL_TIMER_H_
#define DASC_UTIL_TIMER_H_

#include <chrono>

namespace dasc::util {

// Measures elapsed wall time from construction (or the last Restart()).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dasc::util

#endif  // DASC_UTIL_TIMER_H_
