// Minimal command-line flag parsing.
//
// Shared by the CLI and the bench harness. Flags use --name=value (or
// --name for booleans); positional arguments are collected in order.
//
//   util::FlagParser parser;
//   double scale = 1.0;
//   parser.AddDouble("scale", &scale, "workload size multiplier");
//   bool csv = false;
//   parser.AddBool("csv", &csv, "emit CSV");
//   util::Status status = parser.Parse(argc, argv);
#ifndef DASC_UTIL_FLAGS_H_
#define DASC_UTIL_FLAGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace dasc::util {

class FlagParser {
 public:
  // Registers a flag bound to `target` (not owned; must outlive Parse).
  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  // Boolean flags accept --name, --name=true/false/1/0.
  void AddBool(const std::string& name, bool* target, const std::string& help);

  // Parses argv[1..); unknown flags and malformed values are errors.
  // Non-flag arguments land in positional().
  Status Parse(int argc, char** argv);
  // Variant for pre-tokenized args (tests).
  Status Parse(const std::vector<std::string>& args);

  const std::vector<std::string>& positional() const { return positional_; }

  // One line per flag: "--name  help (default: value)".
  std::string HelpText() const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_value;
    bool is_bool = false;
    // Applies a value string to the bound target; false on parse failure.
    std::function<bool(const std::string&)> apply;
  };

  void Register(Flag flag);
  Flag* Find(const std::string& name);

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dasc::util

#endif  // DASC_UTIL_FLAGS_H_
