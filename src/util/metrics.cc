#include "util/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"
#include "util/logging.h"

namespace dasc::util {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// Shortest-ish decimal that round-trips typical metric values ("1.5", not
// "1.5000000000000000"); %.12g keeps 12 significant digits.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

// Metric family of a possibly-labeled series name:
// "watchdog_anomalies_total{kind=\"heartbeat\"}" -> "watchdog_anomalies_total".
std::string FamilyName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Groups sorted (name, value) series by family so each family's samples are
// contiguous under a single # TYPE line, as the exposition format requires
// (labeled variants of "foo" sort after "foo_bar", so the raw sorted order
// is not grouped).
template <typename Value>
std::map<std::string, std::vector<std::pair<std::string, Value>>>
GroupByFamily(const std::vector<std::pair<std::string, Value>>& series) {
  std::map<std::string, std::vector<std::pair<std::string, Value>>> grouped;
  for (const auto& entry : series) {
    grouped[FamilyName(entry.first)].push_back(entry);
  }
  return grouped;
}

void WriteSketchJsonBody(std::ostream& out, const SketchSnapshot& s) {
  out << "\"name\":\"" << JsonEscape(s.name)
      << "\",\"relative_error\":" << FormatDouble(s.relative_error)
      << ",\"window_intervals\":" << s.window_intervals << ",\"window\":{"
      << "\"count\":" << s.window_count
      << ",\"sum\":" << FormatDouble(s.window_sum) << ",\"quantiles\":[";
  for (size_t i = 0; i < s.window_quantiles.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"q\":" << FormatDouble(s.window_quantiles[i].q)
        << ",\"value\":" << FormatDouble(s.window_quantiles[i].value) << "}";
  }
  out << "]},\"cumulative\":{\"count\":" << s.cumulative_count
      << ",\"sum\":" << FormatDouble(s.cumulative_sum) << ",\"quantiles\":[";
  for (size_t i = 0; i < s.cumulative_quantiles.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"q\":" << FormatDouble(s.cumulative_quantiles[i].q)
        << ",\"value\":" << FormatDouble(s.cumulative_quantiles[i].value)
        << "}";
  }
  out << "]},\"exemplars\":[";
  for (size_t i = 0; i < s.exemplars.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"value\":" << FormatDouble(s.exemplars[i].value)
        << ",\"trace_id\":\"" << FormatTraceId(s.exemplars[i].trace_id)
        << "\"}";
  }
  out << "]";
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

double HistogramQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  const double target = q * static_cast<double>(snapshot.count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.counts.size(); ++i) {
    cumulative += snapshot.counts[i];
    if (static_cast<double>(cumulative) >= target) {
      // Overflow bucket: the best finite statement is the largest bound.
      return snapshot.bounds[std::min(i, snapshot.bounds.size() - 1)];
    }
  }
  return snapshot.bounds.back();
}

Histogram::Histogram(const HistogramOptions& options)
    : counts_(static_cast<size_t>(options.num_buckets) + 1) {
  DASC_CHECK_GT(options.num_buckets, 0);
  DASC_CHECK_GT(options.start, 0.0);
  DASC_CHECK_GT(options.growth, 1.0);
  bounds_.reserve(static_cast<size_t>(options.num_buckets));
  double bound = options.start;
  for (int i = 0; i < options.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
}

size_t Histogram::BucketIndex(double value) const {
  // First bound with value <= bound; everything above the last finite bound
  // lands in the overflow bucket (== bounds_.size()).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<size_t>(it - bounds_.begin());
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    const int64_t n = c.load(std::memory_order_relaxed);
    snapshot.counts.push_back(n);
    snapshot.count += n;
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

WindowedQuantileSketch* MetricsRegistry::GetSketch(
    const std::string& name, int window_intervals,
    const QuantileSketchOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sketches_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedQuantileSketch>(name, window_intervals,
                                                   options);
  }
  return slot.get();
}

void MetricsRegistry::AdvanceSketchWindows() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, sketch] : sketches_) sketch->Advance();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, sketch] : sketches_) sketch->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snapshot.histograms.push_back(std::move(h));
  }
  snapshot.sketches.reserve(sketches_.size());
  for (const auto& [name, sketch] : sketches_) {
    snapshot.sketches.push_back(sketch->Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  const MetricsSnapshot snapshot = Snapshot();
  for (const auto& [family, series] : GroupByFamily(snapshot.counters)) {
    out << "# TYPE " << family << " counter\n";
    for (const auto& [name, value] : series) {
      out << name << " " << value << "\n";
    }
  }
  for (const auto& [family, series] : GroupByFamily(snapshot.gauges)) {
    out << "# TYPE " << family << " gauge\n";
    for (const auto& [name, value] : series) {
      out << name << " " << FormatDouble(value) << "\n";
    }
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out << "# TYPE " << h.name << " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out << h.name << "_bucket{le=\"" << FormatDouble(h.bounds[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += h.counts.back();
    out << h.name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << h.name << "_sum " << FormatDouble(h.sum) << "\n";
    out << h.name << "_count " << h.count << "\n";
  }
  // Sketches expose the *windowed* view (live signal); the cumulative view
  // is available from the paired histogram and the JSON snapshot.
  for (const SketchSnapshot& s : snapshot.sketches) {
    out << "# TYPE " << s.name << " summary\n";
    for (const SketchQuantile& sq : s.window_quantiles) {
      out << s.name << "{quantile=\"" << FormatDouble(sq.q) << "\"} "
          << FormatDouble(sq.value) << "\n";
    }
    out << s.name << "_sum " << FormatDouble(s.window_sum) << "\n";
    out << s.name << "_count " << s.window_count << "\n";
  }
}

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  const MetricsSnapshot snapshot = Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    out << "{\"type\":\"counter\",\"name\":\"" << JsonEscape(name)
        << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "{\"type\":\"gauge\",\"name\":\"" << JsonEscape(name)
        << "\",\"value\":" << FormatDouble(value) << "}\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out << "{\"type\":\"histogram\",\"name\":\"" << h.name << "\",\"count\":"
        << h.count << ",\"sum\":" << FormatDouble(h.sum) << ",\"buckets\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      out << "{\"le\":" << FormatDouble(h.bounds[i]) << ",\"count\":"
          << h.counts[i] << "},";
    }
    out << "{\"le\":\"+Inf\",\"count\":" << h.counts.back() << "}]}\n";
  }
  for (const SketchSnapshot& s : snapshot.sketches) {
    out << "{\"type\":\"sketch\",";
    WriteSketchJsonBody(out, s);
    out << "}\n";
  }
}

void MetricsRegistry::WriteJsonSnapshot(std::ostream& out) const {
  const MetricsSnapshot snapshot = Snapshot();
  out << "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(snapshot.counters[i].first)
        << "\":" << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(snapshot.gauges[i].first)
        << "\":" << FormatDouble(snapshot.gauges[i].second);
  }
  out << "},\"histograms\":[";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << JsonEscape(h.name) << "\",\"count\":" << h.count
        << ",\"sum\":" << FormatDouble(h.sum)
        << ",\"p50\":" << FormatDouble(HistogramQuantile(h, 0.5))
        << ",\"p95\":" << FormatDouble(HistogramQuantile(h, 0.95))
        << ",\"p99\":" << FormatDouble(HistogramQuantile(h, 0.99)) << "}";
  }
  out << "],\"sketches\":[";
  for (size_t i = 0; i < snapshot.sketches.size(); ++i) {
    if (i > 0) out << ",";
    out << "{";
    WriteSketchJsonBody(out, snapshot.sketches[i]);
    out << "}";
  }
  out << "]}\n";
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dasc::util
