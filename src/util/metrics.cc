#include "util/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace dasc::util {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// Shortest-ish decimal that round-trips typical metric values ("1.5", not
// "1.5000000000000000"); %.12g keeps 12 significant digits.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

double HistogramQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  const double target = q * static_cast<double>(snapshot.count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.counts.size(); ++i) {
    cumulative += snapshot.counts[i];
    if (static_cast<double>(cumulative) >= target) {
      // Overflow bucket: the best finite statement is the largest bound.
      return snapshot.bounds[std::min(i, snapshot.bounds.size() - 1)];
    }
  }
  return snapshot.bounds.back();
}

Histogram::Histogram(const HistogramOptions& options)
    : counts_(static_cast<size_t>(options.num_buckets) + 1) {
  DASC_CHECK_GT(options.num_buckets, 0);
  DASC_CHECK_GT(options.start, 0.0);
  DASC_CHECK_GT(options.growth, 1.0);
  bounds_.reserve(static_cast<size_t>(options.num_buckets));
  double bound = options.start;
  for (int i = 0; i < options.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
}

size_t Histogram::BucketIndex(double value) const {
  // First bound with value <= bound; everything above the last finite bound
  // lands in the overflow bucket (== bounds_.size()).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<size_t>(it - bounds_.begin());
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    const int64_t n = c.load(std::memory_order_relaxed);
    snapshot.counts.push_back(n);
    snapshot.count += n;
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  const MetricsSnapshot snapshot = Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    out << "# TYPE " << name << " counter\n" << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "# TYPE " << name << " gauge\n"
        << name << " " << FormatDouble(value) << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out << "# TYPE " << h.name << " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out << h.name << "_bucket{le=\"" << FormatDouble(h.bounds[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += h.counts.back();
    out << h.name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << h.name << "_sum " << FormatDouble(h.sum) << "\n";
    out << h.name << "_count " << h.count << "\n";
  }
}

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  const MetricsSnapshot snapshot = Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    out << "{\"type\":\"counter\",\"name\":\"" << name << "\",\"value\":"
        << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "{\"type\":\"gauge\",\"name\":\"" << name << "\",\"value\":"
        << FormatDouble(value) << "}\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out << "{\"type\":\"histogram\",\"name\":\"" << h.name << "\",\"count\":"
        << h.count << ",\"sum\":" << FormatDouble(h.sum) << ",\"buckets\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      out << "{\"le\":" << FormatDouble(h.bounds[i]) << ",\"count\":"
          << h.counts[i] << "},";
    }
    out << "{\"le\":\"+Inf\",\"count\":" << h.counts.back() << "}]}\n";
  }
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dasc::util
