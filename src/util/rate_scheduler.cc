#include "util/rate_scheduler.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace dasc::util {

Result<ArrivalProcess> ParseArrivalProcess(const std::string& name) {
  if (name == "uniform") return ArrivalProcess::kUniform;
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "bursty") return ArrivalProcess::kBursty;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  return Status::InvalidArgument(
      "unknown arrival process '" + name +
      "' (expected uniform|poisson|bursty|diurnal)");
}

const char* ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kUniform:
      return "uniform";
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

std::vector<double> BuildArrivalSchedule(const ArrivalScheduleOptions& options,
                                         int count) {
  DASC_CHECK_GT(options.rate_per_min, 0.0);
  DASC_CHECK_GE(count, 0);
  std::vector<double> schedule;
  schedule.reserve(static_cast<size_t>(count));
  if (count == 0) return schedule;
  const double mean_gap_s = 60.0 / options.rate_per_min;
  const double span_s = mean_gap_s * static_cast<double>(count);
  Rng rng(options.seed);

  switch (options.process) {
    case ArrivalProcess::kUniform: {
      for (int i = 0; i < count; ++i) {
        schedule.push_back(static_cast<double>(i) * mean_gap_s);
      }
      break;
    }
    case ArrivalProcess::kPoisson: {
      // Exponential gaps with the configured mean; the sum drifts around
      // span_s as a real Poisson process would.
      double t = 0.0;
      for (int i = 0; i < count; ++i) {
        schedule.push_back(t);
        t += -mean_gap_s * std::log(1.0 - rng.UniformUnit());
      }
      break;
    }
    case ArrivalProcess::kBursty: {
      DASC_CHECK_GT(options.burst_period_s, 0.0);
      DASC_CHECK_GT(options.burst_duty, 0.0);
      DASC_CHECK_LE(options.burst_duty, 1.0);
      // All of each period's arrivals are compressed into its leading
      // burst_duty window (uniform spacing inside the burst), so the mean
      // rate over a full period is exactly the offered rate while the
      // in-burst instantaneous rate is 1/duty (= burst_factor) times it.
      const double per_period =
          options.burst_period_s / mean_gap_s;  // arrivals per period
      for (int i = 0; i < count; ++i) {
        const double position = static_cast<double>(i) / per_period;
        const double period_start =
            std::floor(position) * options.burst_period_s;
        const double in_period = position - std::floor(position);
        schedule.push_back(period_start + in_period * options.burst_duty *
                                              options.burst_period_s);
      }
      break;
    }
    case ArrivalProcess::kDiurnal: {
      DASC_CHECK_GE(options.diurnal_amplitude, 0.0);
      DASC_CHECK_LT(options.diurnal_amplitude, 1.0);
      // Inverse-transform sampling of the sinusoidal intensity: arrival i
      // is placed where the cumulative rate reaches (i + 0.5)/count of the
      // total. Lambda(t) = t + A*span/(2*pi*P) * (1 - cos(2*pi*P*t/span))
      // integrates rate(t) = 1 + A*sin(2*pi*P*t/span); solve by bisection
      // (Lambda is strictly increasing since A < 1).
      const double two_pi_p = 2.0 * M_PI * options.diurnal_periods;
      const double amp = options.diurnal_amplitude;
      auto cumulative = [&](double t) {
        return t + amp * span_s / two_pi_p *
                       (1.0 - std::cos(two_pi_p * t / span_s));
      };
      const double total = cumulative(span_s);
      for (int i = 0; i < count; ++i) {
        const double target =
            total * (static_cast<double>(i) + 0.5) / count;
        double lo = 0.0, hi = span_s;
        for (int iter = 0; iter < 60; ++iter) {
          const double mid = 0.5 * (lo + hi);
          (cumulative(mid) < target ? lo : hi) = mid;
        }
        schedule.push_back(0.5 * (lo + hi));
      }
      break;
    }
  }
  std::sort(schedule.begin(), schedule.end());
  return schedule;
}

}  // namespace dasc::util
