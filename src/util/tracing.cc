#include "util/tracing.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace dasc::util {

namespace {

struct SpanEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int64_t arg = 0;
  bool has_arg = false;
};

// One recording thread's buffer. Owned jointly by the thread (thread_local
// shared_ptr) and the global list, so spans recorded by pool threads remain
// exportable even after those threads exit.
struct ThreadBuffer {
  int tid = 0;
  std::vector<SpanEvent> events;
};

std::atomic<bool> g_active{false};

std::mutex& BuffersMutex() {
  static std::mutex* const mu = new std::mutex();
  return *mu;
}

std::vector<std::shared_ptr<ThreadBuffer>>& Buffers() {
  static auto* const buffers = new std::vector<std::shared_ptr<ThreadBuffer>>();
  return *buffers;
}

// Trace epoch: reset by StartTracing so timestamps start near zero.
std::chrono::steady_clock::time_point& Epoch() {
  static auto* const epoch =
      new std::chrono::steady_clock::time_point(std::chrono::steady_clock::now());
  return *epoch;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Epoch())
      .count();
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(BuffersMutex());
    b->tid = static_cast<int>(Buffers().size());
    Buffers().push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

bool TracingActive() { return g_active.load(std::memory_order_relaxed); }

void StartTracing() {
  ClearTraceEvents();
  Epoch() = std::chrono::steady_clock::now();
  g_active.store(true, std::memory_order_release);
}

void StopTracing() { g_active.store(false, std::memory_order_release); }

void ClearTraceEvents() {
  std::lock_guard<std::mutex> lock(BuffersMutex());
  for (auto& buffer : Buffers()) buffer->events.clear();
}

size_t TraceEventCount() {
  std::lock_guard<std::mutex> lock(BuffersMutex());
  size_t total = 0;
  for (const auto& buffer : Buffers()) total += buffer->events.size();
  return total;
}

void WriteChromeTrace(std::ostream& out) {
  std::lock_guard<std::mutex> lock(BuffersMutex());
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : Buffers()) {
    for (const SpanEvent& e : buffer->events) {
      if (!first) out << ",";
      first = false;
      char line[256];
      // trace_event ts/dur are fractional microseconds.
      std::snprintf(line, sizeof(line),
                    "\n{\"name\":\"%s\",\"cat\":\"dasc\",\"ph\":\"X\","
                    "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d",
                    e.name, static_cast<double>(e.start_ns) / 1e3,
                    static_cast<double>(e.dur_ns) / 1e3, buffer->tid);
      out << line;
      if (e.has_arg) {
        out << ",\"args\":{\"n\":" << e.arg << "}";
      }
      out << "}";
    }
  }
  out << "\n]}\n";
}

void ScopedSpan::Begin(const char* name, int64_t arg, bool has_arg) {
  name_ = name;
  arg_ = arg;
  has_arg_ = has_arg;
  start_ns_ = NowNs();
}

void ScopedSpan::End() {
  const int64_t end_ns = NowNs();
  LocalBuffer().events.push_back(
      {name_, start_ns_, end_ns - start_ns_, arg_, has_arg_});
}

}  // namespace dasc::util
