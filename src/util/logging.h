// Lightweight logging and invariant-check macros.
//
// The library does not use exceptions; internal invariant violations abort
// with a diagnostic (RocksDB-style), while recoverable errors are reported
// through util::Status / util::Result.
#ifndef DASC_UTIL_LOGGING_H_
#define DASC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dasc::util {

namespace internal {

// Accumulates a message and aborts the process when destroyed. Used as the
// right-hand side of the DASC_CHECK macros so callers can stream context:
//   DASC_CHECK(x > 0) << "x was " << x;
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Lowers a FatalMessage expression (including its streamed suffix) to void;
// `&` binds looser than `<<`, so the full streamed chain runs first.
struct Voidifier {
  void operator&(const FatalMessage&) {}
};

}  // namespace internal

}  // namespace dasc::util

// Aborts with a diagnostic when `condition` is false. Supports streaming
// extra context: DASC_CHECK(x > 0) << "x was " << x;
#define DASC_CHECK(condition)                                  \
  (condition) ? (void)0                                        \
              : ::dasc::util::internal::Voidifier() &          \
                    ::dasc::util::internal::FatalMessage(      \
                        __FILE__, __LINE__, #condition)

#define DASC_CHECK_EQ(a, b) DASC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_NE(a, b) DASC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_LT(a, b) DASC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_LE(a, b) DASC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_GT(a, b) DASC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_GE(a, b) DASC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define DASC_DCHECK(condition) \
  while (false) DASC_CHECK(condition)
#else
#define DASC_DCHECK(condition) DASC_CHECK(condition)
#endif

#endif  // DASC_UTIL_LOGGING_H_
