// Lightweight logging and invariant-check macros.
//
// The library does not use exceptions; internal invariant violations abort
// with a diagnostic (RocksDB-style), while recoverable errors are reported
// through util::Status / util::Result.
#ifndef DASC_UTIL_LOGGING_H_
#define DASC_UTIL_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dasc::util {

// Severity of a non-fatal DASC_LOG message. Messages below the runtime
// minimum level (default WARNING) are discarded without evaluating their
// streamed operands.
enum class LogLevel : int {
  INFO = 0,
  WARNING = 1,
  ERROR = 2,
};

const char* LogLevelName(LogLevel level);

// Runtime minimum level for DASC_LOG (process-wide, thread-safe).
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal {

inline std::atomic<int> g_min_log_level{static_cast<int>(LogLevel::WARNING)};

// Accumulates a message and aborts the process when destroyed. Used as the
// right-hand side of the DASC_CHECK macros so callers can stream context:
//   DASC_CHECK(x > 0) << "x was " << x;
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Accumulates a non-fatal message and writes it to stderr when destroyed
// (one fputs so concurrent messages do not interleave mid-line). Right-hand
// side of DASC_LOG.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level) {
    stream_ << "[" << LogLevelName(level) << "] " << file << ":" << line
            << ": ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << '\n';
    std::fputs(stream_.str().c_str(), stderr);
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Lowers a FatalMessage / LogMessage expression (including its streamed
// suffix) to void; `&` binds looser than `<<`, so the full streamed chain
// runs first.
struct Voidifier {
  void operator&(const FatalMessage&) {}
  void operator&(const LogMessage&) {}
};

}  // namespace internal

inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::INFO:
      return "INFO";
    case LogLevel::WARNING:
      return "WARNING";
    case LogLevel::ERROR:
      return "ERROR";
  }
  return "?";
}

inline void SetMinLogLevel(LogLevel level) {
  internal::g_min_log_level.store(static_cast<int>(level),
                                  std::memory_order_relaxed);
}

inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      internal::g_min_log_level.load(std::memory_order_relaxed));
}

}  // namespace dasc::util

// Aborts with a diagnostic when `condition` is false. Supports streaming
// extra context: DASC_CHECK(x > 0) << "x was " << x;
#define DASC_CHECK(condition)                                  \
  (condition) ? (void)0                                        \
              : ::dasc::util::internal::Voidifier() &          \
                    ::dasc::util::internal::FatalMessage(      \
                        __FILE__, __LINE__, #condition)

#define DASC_CHECK_EQ(a, b) DASC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_NE(a, b) DASC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_LT(a, b) DASC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_LE(a, b) DASC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_GT(a, b) DASC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DASC_CHECK_GE(a, b) DASC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define DASC_DCHECK(condition) \
  while (false) DASC_CHECK(condition)
#else
#define DASC_DCHECK(condition) DASC_CHECK(condition)
#endif

// Non-fatal leveled logging to stderr:
//   DASC_LOG(WARNING) << "audit: " << detail;
// `severity` is an unqualified LogLevel enumerator (INFO, WARNING, ERROR).
// Messages below SetMinLogLevel (default WARNING) are skipped after one
// relaxed load, with the streamed operands left unevaluated.
#define DASC_LOG(severity)                                                 \
  (static_cast<int>(::dasc::util::LogLevel::severity) <                    \
   static_cast<int>(::dasc::util::MinLogLevel()))                          \
      ? (void)0                                                            \
      : ::dasc::util::internal::Voidifier() &                              \
            ::dasc::util::internal::LogMessage(                            \
                __FILE__, __LINE__, ::dasc::util::LogLevel::severity)

#endif  // DASC_UTIL_LOGGING_H_
