// Minimal JSON document model: parse, navigate, serialize.
//
// Built for the observability pipeline (run-report reading, BENCH trajectory
// files) where the third-party-free rule applies. The model is a plain DOM:
// null / bool / number / string / array / object, with object members kept
// in insertion order so re-serialized documents stay diffable. Numbers are
// stored as doubles, which round-trips every value the repo writes (counters
// stay exact up to 2^53).
#ifndef DASC_UTIL_JSON_H_
#define DASC_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dasc::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; reading the wrong kind returns the type's zero value.
  bool AsBool() const { return is_bool() && bool_; }
  double AsDouble() const { return is_number() ? number_ : 0.0; }
  int64_t AsInt64() const { return static_cast<int64_t>(AsDouble()); }
  const std::string& AsString() const;

  // Array access.
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue value) { items_.push_back(std::move(value)); }

  // Object access; members preserve insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  // First member named `key`, or nullptr.
  const JsonValue* Find(const std::string& key) const;
  void Set(const std::string& key, JsonValue value);

  // Convenience lookups with defaults for flat report objects.
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  // Compact serialization (no whitespace); Write(out, indent) pretty-prints
  // with two-space indentation when indent >= 0.
  void Write(std::ostream& out, int indent = -1) const;
  std::string ToString(int indent = -1) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses one JSON document (trailing whitespace allowed, anything else after
// the document is an error). Errors carry a byte offset.
Result<JsonValue> ParseJson(const std::string& text);

// Escapes `s` for embedding inside a JSON string literal (quotes,
// backslashes, and control bytes; no surrounding quotes added).
std::string JsonEscape(const std::string& s);

// Shortest round-trippable-ish number formatting shared by every JSON writer
// in the repo ("%.12g", matching the metrics registry exposition).
std::string JsonNumber(double value);

}  // namespace dasc::util

#endif  // DASC_UTIL_JSON_H_
