// Flight recorder: an always-on, bounded, per-thread ring of compact binary
// events (batch boundaries, phase spans, decisions, anomalies) that can be
// dumped as a `dasc-flight/1` JSONL artifact after the fact — the black box
// that explains *what the process was doing* in the seconds before a stall,
// without paying for a full trace during normal operation.
//
// Design (see DESIGN.md §16):
//   * Bounded memory. Each recording thread owns one fixed-capacity ring
//     (default 8192 events x 40 bytes); new events overwrite the oldest, so
//     steady-state memory is rings x capacity regardless of run length.
//     Rings are registered in a global list and survive their thread (the
//     dump can still read them).
//   * Cheap appends. A disabled recorder is one relaxed atomic load and a
//     branch per site; enabled, an append is one steady-clock read plus a
//     short uncontended per-ring mutex section (the mutex only contends
//     with a concurrent dump, which is rare by construction).
//   * Phase self time. FlightSpan is an RAII scope that records
//     phase_begin/phase_end events AND accumulates the span's *self* time
//     (elapsed minus nested flight spans) into a thread-local per-label
//     table; TakeThreadPhaseNanos() snapshots-and-clears that table. The
//     batch loop uses it to attribute each batch's wall time to named
//     phases for the causal task tracer.
//   * Dumps merge every ring in timestamp order into JSONL: one
//     {"type":"flight","schema":"dasc-flight/1",...} header, then one
//     {"type":"event",...} line per surviving event. The watchdog dumps
//     automatically on stall/backlog anomalies; /debug/flight dumps on
//     demand.
#ifndef DASC_UTIL_FLIGHT_RECORDER_H_
#define DASC_UTIL_FLIGHT_RECORDER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dasc::util {

// Closed event taxonomy; serialized via FlightEventKindName.
enum class FlightEventKind : uint32_t {
  kBatchBegin = 0,  // a = batch seq
  kBatchEnd,        // a = batch seq, b = decisions committed
  kPhaseBegin,      // label = phase, a = caller arg
  kPhaseEnd,        // label = phase, a = caller arg, b = elapsed ns
  kDecision,        // a = task id, b = 1 served / 0 expired
  kAnomaly,         // label = anomaly kind, a = batch seq
  kMark,            // freeform caller marker
};
const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  int64_t t_ns = 0;    // steady-clock ns since the recorder epoch
  uint32_t kind = 0;   // FlightEventKind
  uint32_t label = 0;  // interned label id (0 = none)
  int64_t a = 0;       // payload, kind-specific
  int64_t b = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 8192;

  // The process-wide recorder every DASC_FLIGHT_* site records into.
  static FlightRecorder& Global();

  // Runtime switch (default on). Disabling reduces a site to one relaxed
  // load + branch; spans stop accumulating phase time.
  void SetEnabled(bool enabled);
  bool enabled() const;

  // Applies to rings created after the call (existing rings keep their
  // size); used by tests and memory-constrained embeddings.
  void SetRingCapacity(size_t capacity);

  // Interns `name` into a small stable id (0 is reserved for "none").
  uint32_t InternLabel(const std::string& name);
  // "" for 0 or out-of-range ids.
  std::string LabelName(uint32_t label) const;

  void Record(FlightEventKind kind, uint32_t label = 0, int64_t a = 0,
              int64_t b = 0);

  // dasc-flight/1 JSONL dump: header + events merged across all thread
  // rings in ascending t_ns order. `reason` records why the dump happened
  // ("heartbeat_stall", "debug_http", "shutdown", ...).
  void WriteJsonl(std::ostream& out, const std::string& reason) const;
  std::string DumpJsonl(const std::string& reason) const;
  Status DumpToFile(const std::string& path, const std::string& reason) const;

  // Total events ever recorded (including ones since overwritten) and the
  // count overwritten, across all rings.
  int64_t recorded() const;
  int64_t dropped() const;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder() = default;
};

// RAII phase scope: phase_begin/phase_end events plus self-time
// accumulation into the calling thread's phase table. Use via
// DASC_FLIGHT_SPAN so the label is interned once per site.
class FlightSpan {
 public:
  explicit FlightSpan(uint32_t label, int64_t a = 0);
  ~FlightSpan();
  FlightSpan(const FlightSpan&) = delete;
  FlightSpan& operator=(const FlightSpan&) = delete;

 private:
  uint32_t label_ = 0;
  int64_t a_ = 0;
  int64_t begin_ns_ = 0;
  bool active_ = false;
};

// Snapshot-and-clear of the calling thread's accumulated (label, self ns)
// phase table. Only labels with nonzero time are returned.
std::vector<std::pair<uint32_t, int64_t>> TakeThreadPhaseNanos();

}  // namespace dasc::util

#define DASC_FLIGHT_CONCAT_INNER_(a, b) a##b
#define DASC_FLIGHT_CONCAT_(a, b) DASC_FLIGHT_CONCAT_INNER_(a, b)

// A named flight-recorder phase covering the enclosing block. `name` is
// interned once per site (thread-safe function-local static).
#define DASC_FLIGHT_SPAN(name)                                             \
  static const uint32_t DASC_FLIGHT_CONCAT_(dasc_flight_label_,            \
                                            __LINE__) =                    \
      ::dasc::util::FlightRecorder::Global().InternLabel(name);            \
  ::dasc::util::FlightSpan DASC_FLIGHT_CONCAT_(dasc_flight_span_,          \
                                               __LINE__)(                  \
      DASC_FLIGHT_CONCAT_(dasc_flight_label_, __LINE__))

#endif  // DASC_UTIL_FLIGHT_RECORDER_H_
