// Minimal single-threaded HTTP/1.0 exposition endpoint for live telemetry.
//
// MetricsHttpServer binds a loopback TCP socket and serves, from one
// background thread, read-only views of a MetricsRegistry:
//
//   GET /metrics   Prometheus text format 0.0.4 (WritePrometheus)
//   GET /snapshot  latest full JSON snapshot (WriteJsonSnapshot), with a
//                  "build" provenance block spliced in (util/build_info.h)
//   GET /window    windowed sketch quantiles only, as JSON
//   GET /healthz   JSON liveness probe: {"status":"ok","uptime_s":...,
//                  "seq":<requests served>,"build":{...}}
//   GET /debug/flight  on-demand dump of the global flight recorder
//                  (util/flight_recorder.h) as dasc-flight/1 JSONL
//
// Scope is deliberately tiny: HTTP/1.0, GET only, one connection at a time,
// Connection: close — a scrape endpoint, not a web server. Requests are
// answered from registry snapshots, so scrapes never block metric writers
// (see DESIGN.md §14 for the protocol contract). The accept loop polls with
// a 100 ms timeout so Stop() takes effect promptly; Stop() joins the thread
// and is safe to call twice (the destructor calls it).
//
// Because the server handles one connection at a time, a client that
// connects and then neither sends a request nor drains the response would
// stall the exposition loop forever. Every accepted socket therefore gets
// SO_RCVTIMEO and SO_SNDTIMEO set to Options::io_timeout_ms; a connection
// that trips either timeout is dropped, counted in io_timeouts() and in the
// http_server_io_timeouts_total registry counter, and the loop moves on.
//
// This is the in-process-first step toward the always-on allocation server:
// the same endpoint will be scraped by dasc_loadgen once the ingest API
// exists (ROADMAP).
#ifndef DASC_UTIL_HTTP_SERVER_H_
#define DASC_UTIL_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "util/metrics.h"
#include "util/status.h"

namespace dasc::util {

class MetricsHttpServer {
 public:
  struct Options {
    // Port 0 binds an ephemeral port; read the outcome from port().
    int port = 0;
    // The registry served; defaults to GlobalMetrics() when nullptr.
    MetricsRegistry* registry = nullptr;
    // Per-connection socket recv/send timeout. A client that stops sending
    // its request or stops draining the response for this long is dropped
    // so it cannot wedge the single-threaded exposition loop. Values <= 0
    // fall back to the 1000 ms default.
    int io_timeout_ms = 1000;
  };

  explicit MetricsHttpServer(const Options& options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds 127.0.0.1:<port> and starts the serving thread. Fails (without
  // aborting) when the port is unavailable or sockets cannot be created.
  Status Start();

  // Stops the serving thread and closes the listening socket. Idempotent.
  void Stop();

  // The bound port (resolved when options.port was 0); 0 before Start().
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Connections dropped because a socket recv/send hit io_timeout_ms.
  int64_t io_timeouts() const {
    return io_timeouts_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  std::string HandleRequest(const std::string& path) const;

  Options options_;
  MetricsRegistry* registry_ = nullptr;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  // /healthz payload: uptime origin and requests served so far.
  std::chrono::steady_clock::time_point start_time_{};
  std::atomic<int64_t> request_seq_{0};
  std::atomic<int64_t> io_timeouts_{0};
  std::thread thread_;
};

// Minimal blocking HTTP GET against 127.0.0.1:<port> (the test/CLI client
// for the server above). Returns the response body on HTTP 200, an error
// Status on connect/read failure or any other status code.
Result<std::string> HttpGetLocal(int port, const std::string& path,
                                 int timeout_ms = 2000);

}  // namespace dasc::util

#endif  // DASC_UTIL_HTTP_SERVER_H_
