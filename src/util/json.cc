#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dasc::util {

namespace {

const std::string kEmptyString;

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const std::string& JsonValue::AsString() const {
  return is_string() ? string_ : kEmptyString;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

void JsonValue::Write(std::ostream& out, int indent) const {
  const std::string pad =
      indent >= 0 ? std::string(static_cast<size_t>(indent) * 2, ' ') : "";
  const std::string inner_pad =
      indent >= 0 ? std::string((static_cast<size_t>(indent) + 1) * 2, ' ')
                  : "";
  const char* nl = indent >= 0 ? "\n" : "";
  const char* colon = indent >= 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      out << "null";
      break;
    case Kind::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      out << JsonNumber(number_);
      break;
    case Kind::kString:
      out << '"' << JsonEscape(string_) << '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out << "[]";
        break;
      }
      out << '[' << nl;
      for (size_t i = 0; i < items_.size(); ++i) {
        out << inner_pad;
        items_[i].Write(out, indent >= 0 ? indent + 1 : -1);
        if (i + 1 < items_.size()) out << ',';
        out << nl;
      }
      out << pad << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out << "{}";
        break;
      }
      out << '{' << nl;
      for (size_t i = 0; i < members_.size(); ++i) {
        out << inner_pad << '"' << JsonEscape(members_[i].first) << '"'
            << colon;
        members_[i].second.Write(out, indent >= 0 ? indent + 1 : -1);
        if (i + 1 < members_.size()) out << ',';
        out << nl;
      }
      out << pad << '}';
      break;
    }
  }
}

std::string JsonValue::ToString(int indent) const {
  std::string out;
  {
    std::ostringstream stream;
    Write(stream, indent);
    out = stream.str();
  }
  return out;
}

namespace {

// Recursive-descent parser over the raw text; single pass, no lookahead
// beyond one byte.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status status = ParseString(&s);
        if (!status.ok()) return status;
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control byte in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are passed through as-is; the
          // repo's writers only emit \u00xx control escapes).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace dasc::util
