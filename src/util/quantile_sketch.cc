#include "util/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace dasc::util {

const std::vector<double>& SketchSnapshotRanks() {
  static const std::vector<double>* const ranks =
      new std::vector<double>{0.5, 0.9, 0.95, 0.99};
  return *ranks;
}

std::string FormatTraceId(uint64_t trace_id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buffer;
}

uint64_t ParseTraceId(const std::string& text) {
  if (text.empty() || text.size() > 16) return 0;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = 10 + (c - 'a');
    } else if (c >= 'A' && c <= 'F') {
      digit = 10 + (c - 'A');
    } else {
      return 0;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

QuantileSketch::QuantileSketch(const QuantileSketchOptions& options)
    : options_(options) {
  DASC_CHECK_GT(options.relative_error, 0.0);
  DASC_CHECK_LT(options.relative_error, 1.0);
  DASC_CHECK_GT(options.min_value, 0.0);
  DASC_CHECK_GT(options.max_value, options.min_value);
  const double gamma =
      (1.0 + options.relative_error) / (1.0 - options.relative_error);
  log_gamma_ = std::log(gamma);
  index_min_ =
      static_cast<int64_t>(std::ceil(std::log(options.min_value) / log_gamma_));
  const int64_t index_max =
      static_cast<int64_t>(std::ceil(std::log(options.max_value) / log_gamma_));
  // Slot 0 is the zero bucket; the rest cover [index_min_, index_max].
  buckets_.assign(static_cast<size_t>(index_max - index_min_ + 2), 0);
}

int64_t QuantileSketch::BucketIndex(double value) const {
  // Zero bucket: zero, negative, NaN, and sub-min_value samples.
  if (!(value >= options_.min_value)) return 0;
  const double clamped = std::min(value, options_.max_value);
  int64_t index =
      static_cast<int64_t>(std::ceil(std::log(clamped) / log_gamma_));
  // Clamp against float fuzz at the range edges.
  index = std::min(std::max(index, index_min_),
                   index_min_ + static_cast<int64_t>(buckets_.size()) - 2);
  return 1 + (index - index_min_);
}

void QuantileSketch::Observe(double value) {
  buckets_[static_cast<size_t>(BucketIndex(value))] += 1;
  count_ += 1;
  sum_ += value;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  DASC_CHECK_EQ(buckets_.size(), other.buckets_.size())
      << "merging sketches with different options";
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void QuantileSketch::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const int64_t target_rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(count_ - 1)));  // 0-based rank
  int64_t cumulative = -1;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target_rank) {
      if (i == 0) return 0.0;  // zero bucket
      // Midpoint representative of log bucket index_min_ + (i - 1):
      // values in (gamma^(idx-1), gamma^idx] estimated as
      // 2 * gamma^idx / (gamma + 1).
      const double idx =
          static_cast<double>(index_min_ + static_cast<int64_t>(i) - 1);
      const double gamma_pow = std::exp(idx * log_gamma_);
      const double gamma = std::exp(log_gamma_);
      return 2.0 * gamma_pow / (gamma + 1.0);
    }
  }
  return options_.max_value;  // unreachable when counts are consistent
}

WindowedQuantileSketch::WindowedQuantileSketch(
    std::string name, int window_intervals,
    const QuantileSketchOptions& options)
    : name_(std::move(name)),
      window_intervals_(window_intervals),
      cumulative_(options),
      merge_scratch_(options) {
  DASC_CHECK_GT(window_intervals, 0);
  ring_.assign(static_cast<size_t>(window_intervals), QuantileSketch(options));
}

void WindowedQuantileSketch::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[current_].Observe(value);
  cumulative_.Observe(value);
}

void WindowedQuantileSketch::Observe(double value,
                                     uint64_t exemplar_trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[current_].Observe(value);
  cumulative_.Observe(value);
  if (exemplar_trace_id != 0) {
    exemplars_[cumulative_.BucketFor(value)] = {value, exemplar_trace_id};
  }
}

void WindowedQuantileSketch::Advance() {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = (current_ + 1) % ring_.size();
  ring_[current_].Clear();
}

void WindowedQuantileSketch::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (QuantileSketch& s : ring_) s.Clear();
  current_ = 0;
  cumulative_.Clear();
  exemplars_.clear();
}

SketchSnapshot WindowedQuantileSketch::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SketchSnapshot snapshot;
  snapshot.name = name_;
  snapshot.relative_error = cumulative_.options().relative_error;
  snapshot.window_intervals = window_intervals_;

  merge_scratch_.Clear();
  for (const QuantileSketch& s : ring_) merge_scratch_.Merge(s);
  snapshot.window_count = merge_scratch_.count();
  snapshot.window_sum = merge_scratch_.sum();
  snapshot.cumulative_count = cumulative_.count();
  snapshot.cumulative_sum = cumulative_.sum();
  for (double q : SketchSnapshotRanks()) {
    snapshot.window_quantiles.push_back({q, merge_scratch_.Quantile(q)});
    snapshot.cumulative_quantiles.push_back({q, cumulative_.Quantile(q)});
  }
  // exemplars_ is keyed by bucket slot, so iteration order is ascending by
  // value (the zero bucket first, then log buckets low to high).
  snapshot.exemplars.reserve(exemplars_.size());
  for (const auto& [bucket, exemplar] : exemplars_) {
    snapshot.exemplars.push_back(exemplar);
  }
  return snapshot;
}

}  // namespace dasc::util
