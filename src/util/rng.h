// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through util::Rng so that experiments
// are reproducible bit-for-bit from a seed. The generator is xoshiro256**
// seeded via SplitMix64 (public-domain algorithms by Blackman & Vigna).
#ifndef DASC_UTIL_RNG_H_
#define DASC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dasc::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  // Next raw 64-bit output.
  uint64_t Next();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Uniform double in [0, 1).
  double UniformUnit() { return UniformDouble(0.0, 1.0); }

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Zipf-distributed integer in [0, n) with exponent s > 0. Uses inverse
  // transform over the precomputable normalization; O(log n) per draw after
  // an O(n) table build that is cached per (n, s).
  int64_t Zipf(int64_t n, double s);

  // Standard normal via Box-Muller.
  double Gaussian(double mean, double stddev);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Forks a child generator whose stream is independent of further draws from
  // this one; used to give each worker/task its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];

  // Cached Zipf CDF for the last (n, s) used.
  int64_t zipf_n_ = -1;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace dasc::util

#endif  // DASC_UTIL_RNG_H_
