#include "util/rng.h"

#include <cmath>

namespace dasc::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  zipf_n_ = -1;
  zipf_cdf_.clear();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DASC_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble(double lo, double hi) {
  DASC_CHECK_LE(lo, hi);
  // 53 random mantissa bits -> uniform in [0, 1).
  const double unit = static_cast<double>(Next() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformUnit() < p;
}

int64_t Rng::Zipf(int64_t n, double s) {
  DASC_CHECK_GT(n, 0);
  DASC_CHECK_GT(s, 0.0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double total = 0.0;
    for (int64_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[static_cast<size_t>(k)] = total;
    }
    for (auto& v : zipf_cdf_) v /= total;
  }
  const double u = UniformUnit();
  // Binary search for the first CDF entry >= u.
  int64_t lo = 0;
  int64_t hi = n - 1;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (zipf_cdf_[static_cast<size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; draws u1 from (0,1] to avoid log(0).
  double u1;
  do {
    u1 = UniformUnit();
  } while (u1 <= 0.0);
  const double u2 = UniformUnit();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() {
  Rng child(Next() ^ 0xd1b54a32d192ed03ULL);
  return child;
}

}  // namespace dasc::util
