#include "util/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/build_info.h"
#include "util/flight_recorder.h"
#include "util/json.h"
#include "util/logging.h"

namespace dasc::util {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Symbolic name for the errnos bind realistically fails with.
const char* ErrnoName(int err) {
  switch (err) {
    case EADDRINUSE:
      return "EADDRINUSE";
    case EACCES:
      return "EACCES";
    case EADDRNOTAVAIL:
      return "EADDRNOTAVAIL";
    case EINVAL:
      return "EINVAL";
    default:
      return "errno";
  }
}

// Reads until the end of the request head ("\r\n\r\n"), EOF, or a small
// size cap. GET requests have no body, so the head is the whole request.
// Sets *timed_out when recv tripped the socket receive timeout before the
// head terminator arrived (a hung or dribbling client).
std::string ReadRequestHead(int fd, bool* timed_out) {
  std::string request;
  char buffer[1024];
  while (request.size() < 8192) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (timed_out != nullptr && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        *timed_out = true;
      }
      break;
    }
    if (n == 0) break;
    request.append(buffer, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) break;
  }
  return request;
}

// Returns false when the peer went away or stopped draining (send tripped
// the socket send timeout); *timed_out distinguishes the latter.
bool WriteAll(int fd, const std::string& data, bool* timed_out = nullptr) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (timed_out != nullptr && n < 0 &&
          (errno == EAGAIN || errno == EWOULDBLOCK)) {
        *timed_out = true;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string MakeResponse(int code, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << code << " " << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

void SetRecvTimeout(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SetIoTimeouts(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(const Options& options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &GlobalMetrics()) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
  if (running()) return Status::FailedPrecondition("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal(ErrnoMessage("socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    // A taken or privileged port is the caller's configuration problem, not
    // an internal fault: report it as FailedPrecondition with the address
    // and the errno name so "--serve-metrics=9090 twice" reads as what it
    // is instead of a bare "bind: Address already in use".
    const int err = errno;
    const std::string address =
        "127.0.0.1:" + std::to_string(options_.port);
    Status status = Status::Internal("bind " + address + " failed: " +
                                     ErrnoName(err) + " (" +
                                     std::strerror(err) + ")");
    if (err == EADDRINUSE || err == EACCES) {
      status = Status::FailedPrecondition(
          "cannot bind " + address + ": " + ErrnoName(err) + " (" +
          std::strerror(err) +
          "); pick another --serve-metrics port or use 0 for ephemeral");
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    const Status status = Status::Internal(ErrnoMessage("listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status status = Status::Internal(ErrnoMessage("getsockname"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  start_time_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::Serve() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or transient error: re-check stop

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const int io_timeout_ms =
        options_.io_timeout_ms > 0 ? options_.io_timeout_ms : 1000;
    SetIoTimeouts(client, io_timeout_ms);
    bool timed_out = false;
    const std::string request = ReadRequestHead(client, &timed_out);
    if (timed_out) {
      io_timeouts_.fetch_add(1, std::memory_order_relaxed);
      registry_->GetCounter("http_server_io_timeouts_total")->Increment();
      DASC_LOG(WARNING) << "{\"event\":\"http_io_timeout\",\"stage\":\"recv\""
                        << ",\"io_timeout_ms\":" << io_timeout_ms << "}";
      ::close(client);
      continue;
    }

    // Request line: "GET <path> HTTP/1.x".
    std::string method, path;
    const size_t sp1 = request.find(' ');
    if (sp1 != std::string::npos) {
      method = request.substr(0, sp1);
      const size_t sp2 = request.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) path = request.substr(sp1 + 1, sp2 - sp1 - 1);
    }
    // Drop any query string: scrapers sometimes append cache-busters.
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);

    request_seq_.fetch_add(1, std::memory_order_relaxed);
    std::string response;
    if (method != "GET") {
      response = MakeResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n");
    } else {
      response = HandleRequest(path);
    }
    if (!WriteAll(client, response, &timed_out) && timed_out) {
      io_timeouts_.fetch_add(1, std::memory_order_relaxed);
      registry_->GetCounter("http_server_io_timeouts_total")->Increment();
      DASC_LOG(WARNING) << "{\"event\":\"http_io_timeout\",\"stage\":\"send\""
                        << ",\"io_timeout_ms\":" << io_timeout_ms
                        << ",\"path\":\"" << path << "\"}";
    }
    ::close(client);
  }
}

std::string MetricsHttpServer::HandleRequest(const std::string& path) const {
  std::ostringstream body;
  if (path == "/metrics") {
    registry_->WritePrometheus(body);
    return MakeResponse(200, "OK", "text/plain; version=0.0.4", body.str());
  }
  if (path == "/snapshot") {
    registry_->WriteJsonSnapshot(body);
    // Splice the build block in after the opening brace: provenance rides
    // every snapshot without the registry learning about build info.
    std::string snapshot = body.str();
    const size_t brace = snapshot.find('{');
    if (brace != std::string::npos) {
      snapshot.insert(brace + 1, "\"build\":" + BuildInfoJson() + ",");
    }
    return MakeResponse(200, "OK", "application/json", snapshot);
  }
  if (path == "/window") {
    const MetricsSnapshot snapshot = registry_->Snapshot();
    body << "{\"sketches\":[";
    bool first = true;
    for (const SketchSnapshot& s : snapshot.sketches) {
      if (!first) body << ",";
      first = false;
      body << "{\"name\":\"" << s.name
           << "\",\"relative_error\":" << s.relative_error
           << ",\"window_intervals\":" << s.window_intervals
           << ",\"window_count\":" << s.window_count << ",\"quantiles\":{";
      for (size_t i = 0; i < s.window_quantiles.size(); ++i) {
        if (i > 0) body << ",";
        body << "\"p" << static_cast<int>(s.window_quantiles[i].q * 100 + 0.5)
             << "\":" << s.window_quantiles[i].value;
      }
      body << "}}";
    }
    body << "]}\n";
    return MakeResponse(200, "OK", "application/json", body.str());
  }
  if (path == "/healthz") {
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
            .count();
    body << "{\"status\":\"ok\",\"uptime_s\":" << JsonNumber(uptime_s)
         << ",\"seq\":" << request_seq_.load(std::memory_order_relaxed)
         << ",\"build\":" << BuildInfoJson() << "}\n";
    return MakeResponse(200, "OK", "application/json", body.str());
  }
  if (path == "/debug/flight") {
    // On-demand black-box dump: the global flight recorder's rings as
    // dasc-flight/1 JSONL (header line + one line per event, oldest first).
    FlightRecorder::Global().WriteJsonl(body, "http_debug_flight");
    return MakeResponse(200, "OK", "application/x-ndjson", body.str());
  }
  return MakeResponse(
      404, "Not Found", "text/plain",
      "unknown path; try /metrics /snapshot /window /debug/flight\n");
}

Result<std::string> HttpGetLocal(int port, const std::string& path,
                                 int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket"));
  SetRecvTimeout(fd, timeout_ms);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::Internal(ErrnoMessage("connect"));
    ::close(fd);
    return status;
  }

  WriteAll(fd, "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n");
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::Internal("malformed HTTP response (no header terminator)");
  }
  // Status line: "HTTP/1.0 200 OK".
  const size_t sp = response.find(' ');
  const int code = (sp != std::string::npos && sp + 4 <= response.size())
                       ? std::atoi(response.c_str() + sp + 1)
                       : 0;
  if (code != 200) {
    return Status::NotFound("HTTP status " + std::to_string(code) + " for " +
                            path);
  }
  return response.substr(head_end + 4);
}

}  // namespace dasc::util
