// Tabular output helpers for the benchmark harness: an aligned console table
// (the "same rows/series the paper reports") and a CSV writer for plotting.
#ifndef DASC_UTIL_CSV_H_
#define DASC_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace dasc::util {

// Collects rows of string cells and prints them with aligned columns.
// The first added row is treated as the header.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  // Adds a row; each call must pass the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` digits after the point.
  static std::string Num(double value, int precision = 2);

  // Renders the table (title, header, separator, rows) to `out`.
  void Print(std::ostream& out) const;

  // Renders as CSV (no alignment padding).
  void PrintCsv(std::ostream& out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

// Escapes a cell for CSV output (quotes fields containing , " or newline).
std::string CsvEscape(const std::string& field);

}  // namespace dasc::util

#endif  // DASC_UTIL_CSV_H_
