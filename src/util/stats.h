// Streaming statistics accumulators: mean/variance (Welford) and exact
// percentiles over retained samples. Used for ops-style reporting (per-batch
// allocator latency percentiles, batch-size distributions).
#ifndef DASC_UTIL_STATS_H_
#define DASC_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace dasc::util {

// Numerically stable running mean / variance / extrema.
class RunningStats {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Retains every sample; exact quantiles on demand. For bounded experiment
// sizes (per-batch series), exactness beats sketching.
class Percentiles {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }

  // Quantile by linear interpolation between closest ranks; q in [0, 1].
  // Returns 0 when empty.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace dasc::util

#endif  // DASC_UTIL_STATS_H_
