#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"

namespace dasc::util {

ThreadPool::ThreadPool(int num_threads) {
  DASC_CHECK_GT(num_threads, 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DASC_CHECK(!stop_);
    queue_.push_back({std::move(fn), std::chrono::steady_clock::now()});
    DASC_METRIC_GAUGE_SET("threadpool_queue_depth",
                          static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      DASC_METRIC_GAUGE_SET("threadpool_queue_depth",
                            static_cast<double>(queue_.size()));
    }
    using MillisecondsDouble = std::chrono::duration<double, std::milli>;
    const double wait_ms =
        MillisecondsDouble(std::chrono::steady_clock::now() - job.enqueued)
            .count();
    DASC_METRIC_HISTOGRAM_OBSERVE("threadpool_task_wait_ms", wait_ms);
    job.fn();
  }
}

namespace {

// Global thread-count configuration. kUnset defers to DASC_THREADS / auto.
constexpr int kUnset = -1;
std::mutex config_mu;
int configured_threads = kUnset;        // guarded by config_mu
std::unique_ptr<ThreadPool> global_pool;  // guarded by config_mu

int ResolveThreadsLocked() {
  int n = configured_threads;
  if (n == kUnset) {
    if (const char* env = std::getenv("DASC_THREADS")) {
      n = std::atoi(env);
      if (n < 0) n = kUnset;
    }
  }
  if (n == kUnset || n == 0) n = HardwareThreads();
  return std::max(1, n);
}

}  // namespace

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void SetThreads(int n) {
  DASC_CHECK_GE(n, 0);
  std::lock_guard<std::mutex> lock(config_mu);
  // 0 restores the default resolution (DASC_THREADS env, then hardware)
  // rather than pinning "hardware": a harness that forwards its own
  // --threads default of 0 must not eat the user's environment override.
  configured_threads = n == 0 ? kUnset : n;
  if (global_pool != nullptr &&
      global_pool->num_threads() != ResolveThreadsLocked()) {
    global_pool.reset();  // rebuilt at the right size on next use
  }
}

int Threads() {
  std::lock_guard<std::mutex> lock(config_mu);
  return ResolveThreadsLocked();
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(config_mu);
  const int n = ResolveThreadsLocked();
  if (global_pool == nullptr || global_pool->num_threads() != n) {
    global_pool = std::make_unique<ThreadPool>(n);
  }
  return *global_pool;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  DASC_CHECK_GE(grain, 1);
  if (begin >= end) return;
  const int64_t range = end - begin;
  const int threads = Threads();
  // Chunk count: enough for load balancing (a few per thread) but no chunk
  // smaller than `grain`. One chunk or one thread short-circuits to the
  // exact serial path.
  const int64_t max_chunks = (range + grain - 1) / grain;
  const int64_t num_chunks =
      std::min<int64_t>(max_chunks, static_cast<int64_t>(threads) * 4);
  if (threads == 1 || num_chunks <= 1) {
    fn(begin, end);
    return;
  }
  const int64_t chunk = (range + num_chunks - 1) / num_chunks;

  // Shared run state: helpers and the caller race on next_chunk; completion
  // is signalled when every chunk body returned. shared_ptr keeps the state
  // alive until the last helper job (which may outlive this frame only
  // between its fn() return and the lambda's destruction) is done with it.
  struct RunState {
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> done_chunks{0};
    int64_t total_chunks = 0;
    int64_t begin = 0, end = 0, chunk = 0;
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<RunState>();
  state->total_chunks = num_chunks;
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->body = &fn;

  auto drain = [](const std::shared_ptr<RunState>& s) {
    while (true) {
      const int64_t c = s->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->total_chunks) return;
      const int64_t lo = s->begin + c * s->chunk;
      const int64_t hi = std::min(s->end, lo + s->chunk);
      (*s->body)(lo, hi);
      if (s->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          s->total_chunks) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  ThreadPool& pool = GlobalPool();
  // Helpers beyond the physical core count only add scheduler churn (the
  // caller drains chunks too, so `threads` total runners need `threads - 1`
  // helpers at most): a --threads above hardware concurrency used to *slow
  // down* e.g. candidate builds on small hosts. Chunk results are merged in
  // index order, so the clamp cannot change any output.
  const int helpers = std::min<int64_t>(
      std::min(threads, HardwareThreads()) - 1, num_chunks - 1);
  for (int i = 0; i < helpers; ++i) {
    pool.Submit([state, drain] { drain(state); });
  }
  drain(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done_chunks.load(std::memory_order_acquire) ==
           state->total_chunks;
  });
}

}  // namespace dasc::util
