// Metrics substrate: a thread-safe registry of Counters, Gauges, and
// exponentially-bucketed Histograms, with Prometheus text exposition and
// JSONL export.
//
// Design goals (see DESIGN.md §9):
//   * Lock-free hot path. Registration (name -> metric) takes a mutex once;
//     the returned pointer is stable for the registry's lifetime, so
//     instrumentation sites cache it in a function-local static and every
//     subsequent increment is a single relaxed atomic RMW. Safe under
//     util::ThreadPool / ParallelFor (covered by metrics_test_tsan).
//   * Snapshot-on-read. Exporters copy all values under the registration
//     mutex into plain structs; readers never block writers (writers use
//     relaxed atomics and never take the mutex after registration).
//   * Compile-out-able. Building with -DDASC_METRICS=OFF (CMake) defines
//     DASC_METRICS_ENABLED=0 and turns the DASC_METRIC_* macros into no-ops
//     with unevaluated arguments. The classes below remain available either
//     way (tests and explicit callers use them directly).
//   * Runtime kill switch. util::SetMetricsEnabled(false) makes the macros
//     skip their increment after one relaxed load — used by the
//     instrumented-vs-uninstrumented overhead phase of
//     bench_micro_substrates.
#ifndef DASC_UTIL_METRICS_H_
#define DASC_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/quantile_sketch.h"

namespace dasc::util {

// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins floating-point metric (queue depths, last batch values).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed exponential bucketing: finite upper bounds start, start*growth,
// start*growth^2, ... (num_buckets of them) plus an implicit +Inf overflow
// bucket. A sample v lands in the first bucket with v <= bound (Prometheus
// `le` semantics).
struct HistogramOptions {
  double start = 1e-3;
  double growth = 2.0;
  int num_buckets = 28;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;   // finite upper bounds, ascending
  std::vector<int64_t> counts;  // per-bucket (NOT cumulative); size
                                // bounds.size() + 1, last entry = overflow
  int64_t count = 0;            // total samples
  double sum = 0.0;             // sum of samples
};

// Upper-bound estimate of quantile q in [0, 1] from bucketed counts: the
// upper bound of the first bucket whose cumulative count reaches q*count
// (max observed magnitude is unknown inside the overflow bucket, where the
// largest finite bound is returned). 0 when empty.
double HistogramQuantile(const HistogramSnapshot& snapshot, double q);

class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void Observe(double value) {
    sum_.fetch_add(value, std::memory_order_relaxed);
    counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  int64_t count() const;
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  size_t BucketIndex(double value) const;

  std::vector<double> bounds_;
  // bounds_.size() + 1 entries; the last is the +Inf overflow bucket.
  std::vector<std::atomic<int64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, double>> gauges;     // sorted by name
  std::vector<HistogramSnapshot> histograms;              // sorted by name
  std::vector<SketchSnapshot> sketches;                   // sorted by name
};

// Thread-safe name -> metric registry. Get* registers on first use and
// returns a pointer that stays valid (and keeps its identity across Reset)
// for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // Options apply on first registration only; later calls return the
  // existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name,
                          const HistogramOptions& options = {});
  // Windowed quantile sketch; like GetHistogram, window_intervals and
  // options apply on first registration only.
  WindowedQuantileSketch* GetSketch(const std::string& name,
                                    int window_intervals = 64,
                                    const QuantileSketchOptions& options = {});

  // Rotates every registered sketch's window ring. Called once per batch
  // boundary by the simulator, so "window" means "last N batches".
  void AdvanceSketchWindows();

  // Zeroes every value; registered metrics and their addresses survive.
  void Reset();

  MetricsSnapshot Snapshot() const;

  // Prometheus text exposition format (one # TYPE line per metric family;
  // histograms expose cumulative `le` buckets, a +Inf bucket, _sum and
  // _count; sketches are exposed as summaries with windowed quantile
  // labels plus window _sum/_count; labeled series such as
  // name{kind="x"} share one TYPE line per family).
  void WritePrometheus(std::ostream& out) const;

  // Single JSON object ({"counters":{...},"gauges":{...},
  // "histograms":[...],"sketches":[...]}) — the /snapshot payload.
  void WriteJsonSnapshot(std::ostream& out) const;

  // One JSON object per line:
  //   {"type":"counter","name":...,"value":...}
  //   {"type":"gauge","name":...,"value":...}
  //   {"type":"histogram","name":...,"count":...,"sum":...,
  //    "buckets":[{"le":...,"count":...},...,{"le":"+Inf","count":...}]}
  // Bucket counts are per-bucket, not cumulative.
  void WriteJsonl(std::ostream& out) const;

 private:
  mutable std::mutex mu_;  // guards the maps, not metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedQuantileSketch>> sketches_;
};

// The process-wide registry used by the DASC_METRIC_* macros.
MetricsRegistry& GlobalMetrics();

// Runtime kill switch for the macros below (default: enabled). Disabling
// reduces an instrumentation site to one relaxed load + branch.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

}  // namespace dasc::util

// ---------------------------------------------------------------------------
// Instrumentation macros. Each site resolves its metric once (thread-safe
// function-local static), then pays one relaxed atomic op per hit.

#ifndef DASC_METRICS_ENABLED
#define DASC_METRICS_ENABLED 1
#endif

#if DASC_METRICS_ENABLED

#define DASC_METRIC_COUNTER_ADD(name, delta)                      \
  do {                                                            \
    if (::dasc::util::MetricsEnabled()) {                         \
      static ::dasc::util::Counter* const dasc_metric_counter_ =  \
          ::dasc::util::GlobalMetrics().GetCounter(name);         \
      dasc_metric_counter_->Increment(delta);                     \
    }                                                             \
  } while (0)

#define DASC_METRIC_GAUGE_SET(name, value)                    \
  do {                                                        \
    if (::dasc::util::MetricsEnabled()) {                     \
      static ::dasc::util::Gauge* const dasc_metric_gauge_ =  \
          ::dasc::util::GlobalMetrics().GetGauge(name);       \
      dasc_metric_gauge_->Set(value);                         \
    }                                                         \
  } while (0)

// `...` = optional HistogramOptions for the first registration.
#define DASC_METRIC_HISTOGRAM_OBSERVE(name, value, ...)                  \
  do {                                                                   \
    if (::dasc::util::MetricsEnabled()) {                                \
      static ::dasc::util::Histogram* const dasc_metric_histogram_ =     \
          ::dasc::util::GlobalMetrics().GetHistogram(name __VA_OPT__(, ) \
                                                         __VA_ARGS__);   \
      dasc_metric_histogram_->Observe(value);                            \
    }                                                                    \
  } while (0)

// `...` = optional window_intervals (and QuantileSketchOptions) for the
// first registration.
#define DASC_METRIC_SKETCH_OBSERVE(name, value, ...)                       \
  do {                                                                     \
    if (::dasc::util::MetricsEnabled()) {                                  \
      static ::dasc::util::WindowedQuantileSketch* const                   \
          dasc_metric_sketch_ = ::dasc::util::GlobalMetrics().GetSketch(   \
              name __VA_OPT__(, ) __VA_ARGS__);                            \
      dasc_metric_sketch_->Observe(value);                                 \
    }                                                                      \
  } while (0)

// Sketch observe carrying an exemplar trace id (0 = no exemplar).
#define DASC_METRIC_SKETCH_OBSERVE_EX(name, value, exemplar_trace_id)    \
  do {                                                                   \
    if (::dasc::util::MetricsEnabled()) {                                \
      static ::dasc::util::WindowedQuantileSketch* const                 \
          dasc_metric_sketch_ =                                          \
              ::dasc::util::GlobalMetrics().GetSketch(name);             \
      dasc_metric_sketch_->Observe(value, exemplar_trace_id);            \
    }                                                                    \
  } while (0)

#else  // !DASC_METRICS_ENABLED

// Arguments stay unevaluated (sizeof) so flagged-off builds neither pay for
// them nor warn about otherwise-unused variables.
#define DASC_METRIC_COUNTER_ADD(name, delta) \
  ((void)sizeof(name), (void)sizeof(delta))
#define DASC_METRIC_GAUGE_SET(name, value) \
  ((void)sizeof(name), (void)sizeof(value))
#define DASC_METRIC_HISTOGRAM_OBSERVE(name, value, ...) \
  ((void)sizeof(name), (void)sizeof(value))
#define DASC_METRIC_SKETCH_OBSERVE(name, value, ...) \
  ((void)sizeof(name), (void)sizeof(value))
#define DASC_METRIC_SKETCH_OBSERVE_EX(name, value, exemplar_trace_id) \
  ((void)sizeof(name), (void)sizeof(value), (void)sizeof(exemplar_trace_id))

#endif  // DASC_METRICS_ENABLED

#define DASC_METRIC_COUNTER_INC(name) DASC_METRIC_COUNTER_ADD(name, 1)

#endif  // DASC_UTIL_METRICS_H_
