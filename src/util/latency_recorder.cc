#include "util/latency_recorder.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.h"

namespace dasc::util {

namespace {

// bit_width for the bucket math; u == 0 handled by the linear region.
int BitWidth(uint64_t u) { return u == 0 ? 0 : 64 - std::countl_zero(u); }

}  // namespace

LatencyRecorder::LatencyRecorder(const LatencyRecorderOptions& options)
    : options_(options) {
  DASC_CHECK_GT(options_.min_value, 0.0);
  DASC_CHECK_GT(options_.max_value, options_.min_value);
  DASC_CHECK_GE(options_.sub_bucket_bits, 2);
  DASC_CHECK_LE(options_.sub_bucket_bits, 20);
  sub_bucket_count_ = 1 << options_.sub_bucket_bits;

  // Values are scaled so min_value == 1 unit; the layout is the classic
  // HdrHistogram one: a linear region of sub_bucket_count unit-resolution
  // slots for u < 2^bits, then per-power-of-two buckets of half_count slots
  // with resolution 2^k for u in [2^(bits+k-1), 2^(bits+k)).
  const double max_units_d = options_.max_value / options_.min_value;
  const auto max_units = static_cast<uint64_t>(std::ceil(max_units_d));
  const int top_bucket =
      std::max(0, BitWidth(max_units) - options_.sub_bucket_bits);
  const int half = sub_bucket_count_ / 2;
  counts_.assign(
      static_cast<size_t>(sub_bucket_count_ + top_bucket * half), 0);
}

size_t LatencyRecorder::BucketIndex(double value) const {
  const double scaled =
      std::clamp(value / options_.min_value, 0.0,
                 options_.max_value / options_.min_value);
  const auto u = static_cast<uint64_t>(scaled);
  const int half = sub_bucket_count_ / 2;
  const int k = std::max(0, BitWidth(u) - options_.sub_bucket_bits);
  // k == 0: linear region, idx = u. k >= 1: sub = u >> k is in
  // [half, sub_bucket_count), idx = k * half + sub.
  const size_t idx = static_cast<size_t>(k) * static_cast<size_t>(half) +
                     static_cast<size_t>(u >> k);
  return std::min(idx, counts_.size() - 1);
}

double LatencyRecorder::BucketRepresentative(size_t index) const {
  const int half = sub_bucket_count_ / 2;
  double units;
  if (index < static_cast<size_t>(sub_bucket_count_)) {
    units = static_cast<double>(index) + 0.5;
  } else {
    const size_t k = index / static_cast<size_t>(half) - 1;
    const uint64_t sub = index - k * static_cast<size_t>(half);
    units = (static_cast<double>(sub) + 0.5) * std::ldexp(1.0, static_cast<int>(k));
  }
  return units * options_.min_value;
}

void LatencyRecorder::Record(double value) {
  ++counts_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  DASC_CHECK_EQ(counts_.size(), other.counts_.size())
      << "merging recorders with different options";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyRecorder::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

double LatencyRecorder::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 0-based rank ceil(q * (n - 1)) — the util::Percentiles convention.
  const auto rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(count_ - 1)));
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative > rank) return BucketRepresentative(i);
  }
  return BucketRepresentative(counts_.size() - 1);
}

double LatencyRecorder::RelativeError() const {
  // Worst case: half a bucket width at the lower edge of a power-of-two
  // bucket, (2^(k-1)) / (half * 2^k) == 1 / sub_bucket_count.
  return 1.0 / static_cast<double>(sub_bucket_count_);
}

}  // namespace dasc::util
