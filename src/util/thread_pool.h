// Shared parallel execution layer: a fixed-size thread pool and a
// deterministic ParallelFor used by candidate generation and the bench
// harness.
//
// Thread-count policy (one global knob, resolved once per change):
//   * util::SetThreads(n) — programmatic override (the --threads flag of the
//     bench binaries routes here). n = 0 restores the default resolution
//     below; n = 1 means "exact serial fallback": ParallelFor runs the body
//     inline on the calling thread with no pool involvement, so results and
//     side-effect ordering are identical to a pre-parallelism build.
//   * DASC_THREADS environment variable — consulted when SetThreads was
//     never called or was last called with 0 (same 0/1 semantics).
//   * default — hardware concurrency.
//
// Determinism contract: ParallelFor partitions [begin, end) into disjoint
// contiguous chunks. The body receives chunk bounds and must only write
// state owned by indices in its chunk; under that contract the result is
// bit-identical for every thread count, and callers merge any cross-chunk
// output in index order afterwards.
//
// Deadlock safety: ParallelFor enqueues helper jobs on the global pool but
// the calling thread also drains chunks itself, so nested ParallelFor calls
// (e.g. a bench cell running on the pool that itself builds candidates) make
// progress even when every pool thread is busy.
#ifndef DASC_UTIL_THREAD_POOL_H_
#define DASC_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dasc::util {

// Fixed-size FIFO thread pool. Build once, submit many; no work stealing.
//
// Observability: every Submit updates the `threadpool_queue_depth` gauge and
// every dequeue records the job's time-in-queue into the
// `threadpool_task_wait_ms` histogram (DASC_METRIC_* conventions: runtime
// kill switch, -DDASC_METRICS=OFF compile-out).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Enqueues `fn` for execution on some pool thread. `fn` must not throw.
  void Submit(std::function<void()> fn);

 private:
  struct Job {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<Job> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// std::thread::hardware_concurrency(), never less than 1.
int HardwareThreads();

// Sets the global thread count (0 = default: DASC_THREADS env, then
// hardware concurrency; 1 = serial).
// Call at startup or between parallel regions; the global pool is rebuilt
// lazily on the next use. Not safe concurrently with a running ParallelFor.
void SetThreads(int n);

// Resolved global thread count (>= 1), applying SetThreads, then the
// DASC_THREADS environment variable, then hardware concurrency.
int Threads();

// The process-wide pool, sized to Threads(). Created on first use and
// recreated when SetThreads changes the effective count.
ThreadPool& GlobalPool();

// Runs fn(chunk_begin, chunk_end) over disjoint contiguous chunks covering
// [begin, end), each at least `grain` indices (except possibly the last).
// With Threads() == 1 or a single chunk, runs fn(begin, end) inline on the
// calling thread. Blocks until every chunk completed. The calling thread
// participates in chunk execution, so nesting on pool threads cannot
// deadlock. `fn` must not throw.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace dasc::util

#endif  // DASC_UTIL_THREAD_POOL_H_
