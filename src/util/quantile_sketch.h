// Streaming quantile sketch with bounded relative error, plus a
// sliding-window variant for live percentiles.
//
// QuantileSketch is a DDSketch-style log-bucketed sketch: positive values
// are mapped to bucket ceil(log_gamma(v)) with gamma = (1+a)/(1-a), so the
// bucket representative 2*gamma^i/(gamma+1) is within relative error `a` of
// every value in the bucket. Quantile(q) therefore returns an estimate x
// with |x - true_q| <= a * true_q for any value inside the trackable range
// [min_value, max_value] (values above max_value are clamped into the top
// bucket; zero, negative, and sub-min_value samples share a dedicated zero
// bucket whose representative is 0). Buckets are a dense count array over the clamped index range, so
// two sketches built from the same options merge by element-wise addition.
//
// WindowedQuantileSketch layers sliding-window semantics on top: a ring of
// `window_intervals` per-interval sub-sketches plus one cumulative sketch.
// Observe() feeds the current interval and the cumulative sketch; Advance()
// (called at each batch boundary) rotates the ring, dropping the oldest
// interval. Window quantiles are computed by merging the ring on read, so
// they cover at most the last `window_intervals` Advance() periods. All
// methods take an internal mutex: observations happen once per batch (not
// in the matching hot loop), so the lock is cheap and makes concurrent
// scrapes from the exposition server trivially safe (covered by
// telemetry_test_tsan). See DESIGN.md §14.
#ifndef DASC_UTIL_QUANTILE_SKETCH_H_
#define DASC_UTIL_QUANTILE_SKETCH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dasc::util {

struct QuantileSketchOptions {
  // Guaranteed relative accuracy of Quantile() within the trackable range.
  double relative_error = 0.01;
  // Trackable value range; values are clamped into it (ms-scale timings by
  // default: 1 microsecond to ~16 minutes).
  double min_value = 1e-3;
  double max_value = 1e6;
};

// Plain-struct view of a windowed sketch, safe to serialize.
struct SketchQuantile {
  double q = 0.0;      // requested rank, in [0, 1]
  double value = 0.0;  // estimated quantile
};

// One exemplar: a concrete sampled observation (and the causal trace it
// belongs to) pinned to the sketch bucket its value landed in, so an
// aggregate percentile links back to a real request. Trace ids are opaque
// 64-bit handles; serialize them with FormatTraceId (16 hex chars) because
// a JSON double cannot represent the full id space.
struct SketchExemplar {
  double value = 0.0;
  uint64_t trace_id = 0;
};

// 16-char lowercase-hex rendering of a trace id, and its inverse (returns 0
// on malformed input — 0 is never a valid trace id).
std::string FormatTraceId(uint64_t trace_id);
uint64_t ParseTraceId(const std::string& text);

struct SketchSnapshot {
  std::string name;
  double relative_error = 0.0;
  int window_intervals = 0;

  int64_t window_count = 0;
  double window_sum = 0.0;
  std::vector<SketchQuantile> window_quantiles;

  int64_t cumulative_count = 0;
  double cumulative_sum = 0.0;
  std::vector<SketchQuantile> cumulative_quantiles;

  // At most one exemplar per touched cumulative bucket, ascending by value
  // (so the last entries are the tail buckets a p99 estimate reads from).
  std::vector<SketchExemplar> exemplars;
};

// The ranks every snapshot reports, ascending: p50 / p90 / p95 / p99.
const std::vector<double>& SketchSnapshotRanks();

class QuantileSketch {
 public:
  explicit QuantileSketch(const QuantileSketchOptions& options = {});

  void Observe(double value);
  // Element-wise bucket addition; `other` must share this sketch's options.
  void Merge(const QuantileSketch& other);
  void Clear();

  // Estimate of quantile q in [0, 1]: the representative value of the
  // bucket containing rank ceil(q * (count - 1)) (0-based). 0 when empty.
  double Quantile(double q) const;

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  const QuantileSketchOptions& options() const { return options_; }

  // The dense bucket slot `value` maps to (0 = zero bucket). Exposed so the
  // windowed variant can key its exemplar table by bucket.
  int64_t BucketFor(double value) const { return BucketIndex(value); }

 private:
  int64_t BucketIndex(double value) const;

  QuantileSketchOptions options_;
  double log_gamma_ = 0.0;
  int64_t index_min_ = 0;  // bucket index of min_value after clamping
  // buckets_[0] counts values <= 0; buckets_[1 + i - index_min_] counts
  // values in log bucket i, for i in [index_min_, index_max_].
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
};

class WindowedQuantileSketch {
 public:
  // `window_intervals` = ring size N: window reads cover the last N
  // Advance() periods (the current, partially-filled interval included).
  WindowedQuantileSketch(std::string name, int window_intervals,
                         const QuantileSketchOptions& options = {});

  void Observe(double value);
  // Observe with an exemplar: when `exemplar_trace_id` is nonzero the
  // (value, trace_id) pair is pinned to the cumulative bucket the value
  // lands in — one exemplar per bucket, latest wins, so memory is bounded
  // by the sketch's bucket count regardless of sample volume.
  void Observe(double value, uint64_t exemplar_trace_id);
  // Rotates the window ring: the oldest interval is dropped and a fresh
  // current interval begins. The cumulative sketch is unaffected.
  void Advance();
  // Zeroes everything (ring and cumulative); identity/options survive.
  void Reset();

  SketchSnapshot Snapshot() const;
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  int window_intervals_;

  mutable std::mutex mu_;
  std::vector<QuantileSketch> ring_;  // window_intervals_ sub-sketches
  size_t current_ = 0;                // ring_ slot receiving observations
  QuantileSketch cumulative_;
  mutable QuantileSketch merge_scratch_;  // reused by Snapshot()
  // cumulative bucket slot -> latest exemplar observed in that bucket.
  std::map<int64_t, SketchExemplar> exemplars_;
};

}  // namespace dasc::util

#endif  // DASC_UTIL_QUANTILE_SKETCH_H_
