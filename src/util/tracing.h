// Span tracing: RAII scopes recorded into per-thread buffers and exported as
// Chrome/Perfetto trace_event JSON ("X" complete events), so a full
// simulation renders as a flame chart of batches -> candidate build ->
// matching -> best-response rounds in ui.perfetto.dev.
//
//   util::StartTracing();
//   { DASC_TRACE_SPAN("batch"); ... nested spans ... }
//   util::StopTracing();
//   std::ofstream out("run.trace.json");
//   util::WriteChromeTrace(out);
//
// Cost model: when tracing is inactive a span is one relaxed atomic load and
// a branch; when active, two steady_clock reads and one vector push_back
// into the recording thread's own buffer (no locks, no allocation beyond
// amortized vector growth). Span names must be string literals (the buffer
// stores the pointer, not a copy).
//
// Threading: buffers are strictly thread-local while recording; the global
// buffer list is only walked by StartTracing/ClearTraceEvents/export.
// Export or Clear must not run concurrently with active spans — call them
// after StopTracing and after parallel regions have joined (ParallelFor's
// completion provides the needed happens-before with pool threads).
//
// Compile-out: with -DDASC_METRICS=OFF (the observability CMake switch)
// DASC_TRACE_SPAN compiles to nothing; the functions below remain linkable
// no-ops for explicit callers.
#ifndef DASC_UTIL_TRACING_H_
#define DASC_UTIL_TRACING_H_

#include <cstddef>
#include <cstdint>
#include <ostream>

namespace dasc::util {

// Clears previously recorded events and starts recording.
void StartTracing();
// Stops recording; already-buffered events are kept for export.
void StopTracing();
bool TracingActive();

// Drops every buffered event (implicit in StartTracing).
void ClearTraceEvents();

// Number of buffered complete spans across all threads.
size_t TraceEventCount();

// Chrome trace_event JSON: {"traceEvents":[{"name":...,"ph":"X","ts":...,
// "dur":...,"pid":...,"tid":...},...]}. Timestamps are microseconds from
// StartTracing. Loadable by ui.perfetto.dev and chrome://tracing.
void WriteChromeTrace(std::ostream& out);

// RAII span. Use via DASC_TRACE_SPAN; `name` must outlive the trace buffer
// (string literal). The optional arg is exported as args:{"n":value}.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingActive()) Begin(name, 0, false);
  }
  ScopedSpan(const char* name, int64_t arg) {
    if (TracingActive()) Begin(name, arg, true);
  }
  ~ScopedSpan() {
    if (name_ != nullptr) End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* name, int64_t arg, bool has_arg);
  void End();

  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  int64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace dasc::util

#ifndef DASC_METRICS_ENABLED
#define DASC_METRICS_ENABLED 1
#endif

#define DASC_TRACE_CONCAT_INNER_(a, b) a##b
#define DASC_TRACE_CONCAT_(a, b) DASC_TRACE_CONCAT_INNER_(a, b)

#if DASC_METRICS_ENABLED
// A named scope in the flame chart; lives until the end of the enclosing
// block. DASC_TRACE_SPAN_N attaches an integer arg (shown in Perfetto).
#define DASC_TRACE_SPAN(name) \
  ::dasc::util::ScopedSpan DASC_TRACE_CONCAT_(dasc_trace_span_, __LINE__)(name)
#define DASC_TRACE_SPAN_N(name, n)                                   \
  ::dasc::util::ScopedSpan DASC_TRACE_CONCAT_(dasc_trace_span_,      \
                                              __LINE__)(name,        \
                                                        static_cast< \
                                                            int64_t>(n))
#else
#define DASC_TRACE_SPAN(name) ((void)sizeof(name))
#define DASC_TRACE_SPAN_N(name, n) ((void)sizeof(name), (void)sizeof(n))
#endif

#endif  // DASC_UTIL_TRACING_H_
