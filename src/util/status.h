// Error-handling primitives: Status and Result<T>.
//
// The library reports recoverable errors (malformed instances, invalid
// generator parameters) through these types instead of exceptions, following
// the RocksDB / Arrow idiom.
#ifndef DASC_UTIL_STATUS_H_
#define DASC_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace dasc::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

// Value-semantic error descriptor. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Either a value of T or an error Status. Accessing the value of an error
// Result is a fatal precondition violation.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : payload_(std::move(value)) {}
  Result(Status status) : payload_(std::move(status)) {
    DASC_CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status carries no value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    DASC_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T& value() & {
    DASC_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    DASC_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace dasc::util

#endif  // DASC_UTIL_STATUS_H_
