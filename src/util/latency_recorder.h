// HdrHistogram-style latency recorder for load generation.
//
// LatencyRecorder stores value counts in a two-level layout — power-of-two
// top buckets, each split into 2^sub_bucket_bits linear sub-buckets — so
// every recorded value is representable within relative error
// 1 / 2^sub_bucket_bits (default 1/128 < 1%) across the whole trackable
// range, and Percentile() walks the cumulative counts with the same 0-based
// ceil(q*(n-1)) rank convention as util::Percentiles and
// util::QuantileSketch (so the three estimators are directly comparable;
// DESIGN.md §15.4 derives the agreement band against the service's
// DDSketch).
//
// This is deliberately a *second*, structurally different implementation
// from util::QuantileSketch: the load generator records into this one while
// it scrapes the service's sketch, and `dasc_loadgen` reconciles the two —
// a shared implementation would reduce that check to x == x.
//
// The coordinated-omission story lives in the caller: dasc_loadgen records
// (decision_time - INTENDED send time) here, where the intended times come
// from util::RateScheduler's fixed timeline. A stalled service delays
// decisions but never delays the intended timeline, so stall time lands in
// the recorded values instead of silently shrinking the sample count — the
// failure mode closed-loop benchmarks suffer from.
//
// Not thread-safe; the load generator owns one per series on one thread.
// Merge() exists for sharded recorders.
#ifndef DASC_UTIL_LATENCY_RECORDER_H_
#define DASC_UTIL_LATENCY_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dasc::util {

struct LatencyRecorderOptions {
  // Smallest distinguishable value; everything below (including <= 0)
  // clamps into the first sub-bucket. Milliseconds by default: 1 µs.
  double min_value = 1e-3;
  // Values above max_value clamp into the top bucket (counted, capped).
  double max_value = 1e7;  // ~2.8 hours in ms
  // Linear sub-buckets per power-of-two bucket: 2^bits. 7 bits = 128
  // sub-buckets = relative error <= 1/128 ~ 0.78%.
  int sub_bucket_bits = 7;
};

class LatencyRecorder {
 public:
  explicit LatencyRecorder(const LatencyRecorderOptions& options = {});

  void Record(double value);
  // Element-wise addition; `other` must share this recorder's options.
  void Merge(const LatencyRecorder& other);
  void Clear();

  // Bucket-representative estimate of quantile q in [0, 1] at 0-based rank
  // ceil(q * (count - 1)); 0 when empty.
  double Percentile(double q) const;

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double max() const { return max_; }
  double Mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  const LatencyRecorderOptions& options() const { return options_; }

  // Guaranteed relative error of Percentile() for values at or above
  // min_value * 2^(sub_bucket_bits-1) — from there on, every bucket spans
  // at most 1/2^bits of its value. Below that (deep in the linear region)
  // the resolution is absolute instead: half a unit, min_value / 2.
  double RelativeError() const;

 private:
  size_t BucketIndex(double value) const;
  // Midpoint of the value range bucket `index` covers.
  double BucketRepresentative(size_t index) const;

  LatencyRecorderOptions options_;
  int sub_bucket_count_ = 0;   // 2^sub_bucket_bits
  int64_t unit_scale_ = 1;     // min_value == 1 unit after scaling
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dasc::util

#endif  // DASC_UTIL_LATENCY_RECORDER_H_
