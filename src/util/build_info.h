// Build provenance: which binary produced this run.
//
// Load reports and latency measurements are only comparable when the exact
// binary that produced them is recorded — a Debug build's p99 is not a
// regression against a Release baseline. The version / git SHA / build type
// triple is baked in at configure time (CMake passes DASC_BUILD_* compile
// definitions to this translation unit only, so touching the git HEAD
// recompiles one file, not the world) and exposed three ways:
//
//   * GetBuildInfo()            the plain struct, for report writers;
//   * RegisterBuildInfoMetric() a constant-1 info-style gauge
//         dasc_build_info{version="...",git_sha="...",build_type="..."}
//     in a MetricsRegistry, following the Prometheus convention for
//     build-provenance series (value carries nothing; the labels do);
//   * the exposition endpoint echoes it in /snapshot and /healthz
//     (util/http_server.cc), so a scraper can pin every sample it collects
//     to the producing binary.
#ifndef DASC_UTIL_BUILD_INFO_H_
#define DASC_UTIL_BUILD_INFO_H_

#include <string>

namespace dasc::util {

class MetricsRegistry;

struct BuildInfo {
  std::string version;     // project version (CMake project VERSION)
  std::string git_sha;     // short HEAD SHA at configure time, or "unknown"
  std::string build_type;  // CMAKE_BUILD_TYPE, or "unknown"
};

const BuildInfo& GetBuildInfo();

// The labeled series name ("dasc_build_info{version=...,git_sha=...,
// build_type=...}"); exposed for tests and the /healthz echo.
std::string BuildInfoMetricName();

// Registers the info gauge (value 1) in `registry`; nullptr = GlobalMetrics().
// Idempotent — re-registration returns the existing series.
void RegisterBuildInfoMetric(MetricsRegistry* registry = nullptr);

// `{"version":"...","git_sha":"...","build_type":"..."}` — the JSON object
// spliced into /snapshot and /healthz payloads and load-report headers.
std::string BuildInfoJson();

}  // namespace dasc::util

#endif  // DASC_UTIL_BUILD_INFO_H_
