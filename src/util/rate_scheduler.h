// Open-loop arrival schedules for load generation.
//
// An open-loop driver decides every send time *before* the run starts: the
// schedule is a fixed timeline the system under test cannot push back on.
// BuildArrivalSchedule returns the intended send offsets (seconds from run
// start, sorted ascending) for `count` arrivals at `rate_per_min`, shaped by
// one of four processes:
//
//   kUniform   deterministic fixed spacing 60/rate — the steady floor
//   kPoisson   exponential inter-arrival gaps (memoryless demand), seeded
//   kBursty    on/off square wave: burst_duty of each burst_period_s at
//              burst_factor x the base rate, the rest idle — flash crowds
//   kDiurnal   sinusoidal rate modulation over diurnal_periods full cycles
//              (thinned from a uniform grid) — the demand-based availability
//              shape of DATA-WA's dynamic model
//
// Every process preserves the *mean* rate: count arrivals span
// ~count * 60 / rate_per_min seconds, so "offered rate" means the same
// thing across processes. Deterministic given (options, count, seed).
#ifndef DASC_UTIL_RATE_SCHEDULER_H_
#define DASC_UTIL_RATE_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dasc::util {

enum class ArrivalProcess { kUniform, kPoisson, kBursty, kDiurnal };

// "uniform" | "poisson" | "bursty" | "diurnal".
Result<ArrivalProcess> ParseArrivalProcess(const std::string& name);
const char* ArrivalProcessName(ArrivalProcess process);

struct ArrivalScheduleOptions {
  ArrivalProcess process = ArrivalProcess::kUniform;
  double rate_per_min = 10000.0;  // mean offered rate
  uint64_t seed = 42;
  // kBursty shape: each burst_period_s window spends burst_duty of its
  // span sending at burst_factor x the in-burst-adjusted rate, the rest
  // silent.
  double burst_period_s = 2.0;
  double burst_duty = 0.25;
  // kDiurnal shape: rate(t) = mean * (1 + diurnal_amplitude *
  // sin(2*pi*t*periods/span)); amplitude in [0, 1).
  double diurnal_amplitude = 0.8;
  double diurnal_periods = 2.0;
};

// Intended send offsets in seconds from run start, ascending, size `count`.
std::vector<double> BuildArrivalSchedule(const ArrivalScheduleOptions& options,
                                         int count);

}  // namespace dasc::util

#endif  // DASC_UTIL_RATE_SCHEDULER_H_
