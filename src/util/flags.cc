#include "util/flags.h"

#include <charconv>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace dasc::util {

namespace {

bool ParseInt(const std::string& text, int64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, err] = std::from_chars(begin, end, *out);
  return err == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

}  // namespace

void FlagParser::Register(Flag flag) {
  DASC_CHECK(Find(flag.name) == nullptr)
      << "duplicate flag --" << flag.name;
  flags_.push_back(std::move(flag));
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

void FlagParser::AddInt(const std::string& name, int64_t* target,
                        const std::string& help) {
  DASC_CHECK(target != nullptr);
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.default_value = std::to_string(*target);
  flag.apply = [target](const std::string& value) {
    return ParseInt(value, target);
  };
  Register(std::move(flag));
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  DASC_CHECK(target != nullptr);
  Flag flag;
  flag.name = name;
  flag.help = help;
  std::ostringstream default_text;
  default_text << *target;
  flag.default_value = default_text.str();
  flag.apply = [target](const std::string& value) {
    return ParseDouble(value, target);
  };
  Register(std::move(flag));
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  DASC_CHECK(target != nullptr);
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.default_value = *target;
  flag.apply = [target](const std::string& value) {
    *target = value;
    return true;
  };
  Register(std::move(flag));
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  DASC_CHECK(target != nullptr);
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.default_value = *target ? "true" : "false";
  flag.is_bool = true;
  flag.apply = [target](const std::string& value) {
    if (value.empty() || value == "true" || value == "1") {
      *target = true;
      return true;
    }
    if (value == "false" || value == "0") {
      *target = false;
      return true;
    }
    return false;
  };
  Register(std::move(flag));
}

Status FlagParser::Parse(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

Status FlagParser::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const size_t equals = arg.find('=');
    const std::string name = arg.substr(2, equals == std::string::npos
                                               ? std::string::npos
                                               : equals - 2);
    const std::string value =
        equals == std::string::npos ? "" : arg.substr(equals + 1);
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (equals == std::string::npos && !flag->is_bool) {
      return Status::InvalidArgument("flag --" + name + " needs =value");
    }
    if (!flag->apply(value)) {
      return Status::InvalidArgument("bad value for --" + name + ": '" +
                                     value + "'");
    }
  }
  return Status::OK();
}

std::string FlagParser::HelpText() const {
  std::string out;
  for (const Flag& flag : flags_) {
    out += "  --" + flag.name + (flag.is_bool ? "" : "=<value>") + "  " +
           flag.help + " (default: " + flag.default_value + ")\n";
  }
  return out;
}

}  // namespace dasc::util
