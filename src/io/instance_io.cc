#include "io/instance_io.h"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace dasc::io {

namespace {

constexpr char kHeader[] = "# dasc-instance v1";

std::string LineError(int line, const std::string& message) {
  return "line " + std::to_string(line) + ": " + message;
}

// Guard against hostile/corrupted element counts before resizing vectors.
constexpr int64_t kMaxListLength = 10'000'000;

bool SaneCount(int64_t count) { return count >= 0 && count <= kMaxListLength; }

}  // namespace

void WriteInstance(const core::Instance& instance, std::ostream& out) {
  out << kHeader << "\n";
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "skills " << instance.num_skills() << "\n";
  for (const core::Worker& w : instance.workers()) {
    out << "worker " << w.id << " " << w.location.x << " " << w.location.y
        << " " << w.start_time << " " << w.wait_time << " " << w.velocity
        << " " << w.max_distance << " " << w.skills.size();
    for (core::SkillId s : w.skills) out << " " << s;
    out << "\n";
  }
  for (const core::Task& t : instance.tasks()) {
    out << "task " << t.id << " " << t.location.x << " " << t.location.y
        << " " << t.start_time << " " << t.wait_time << " "
        << t.required_skill << " " << t.dependencies.size();
    for (core::TaskId d : t.dependencies) out << " " << d;
    out << "\n";
  }
}

util::Status WriteInstanceFile(const core::Instance& instance,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return util::Status::NotFound("cannot open for writing: " + path);
  }
  WriteInstance(instance, out);
  if (!out) {
    return util::Status::Internal("write failed: " + path);
  }
  return util::Status::OK();
}

util::Result<core::Instance> ReadInstance(std::istream& in) {
  std::vector<core::Worker> workers;
  std::vector<core::Task> tasks;
  int num_skills = -1;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "skills") {
      if (!(fields >> num_skills)) {
        return util::Status::InvalidArgument(
            LineError(line_number, "malformed skills line"));
      }
    } else if (kind == "worker") {
      core::Worker w;
      int64_t count = 0;
      if (!(fields >> w.id >> w.location.x >> w.location.y >> w.start_time >>
            w.wait_time >> w.velocity >> w.max_distance >> count) ||
          !SaneCount(count)) {
        return util::Status::InvalidArgument(
            LineError(line_number, "malformed worker line"));
      }
      w.skills.resize(static_cast<size_t>(count));
      for (auto& s : w.skills) {
        if (!(fields >> s)) {
          return util::Status::InvalidArgument(
              LineError(line_number, "worker skill list truncated"));
        }
      }
      workers.push_back(std::move(w));
    } else if (kind == "task") {
      core::Task t;
      int64_t count = 0;
      if (!(fields >> t.id >> t.location.x >> t.location.y >> t.start_time >>
            t.wait_time >> t.required_skill >> count) ||
          !SaneCount(count)) {
        return util::Status::InvalidArgument(
            LineError(line_number, "malformed task line"));
      }
      t.dependencies.resize(static_cast<size_t>(count));
      for (auto& d : t.dependencies) {
        if (!(fields >> d)) {
          return util::Status::InvalidArgument(
              LineError(line_number, "task dependency list truncated"));
        }
      }
      tasks.push_back(std::move(t));
    } else {
      return util::Status::InvalidArgument(
          LineError(line_number, "unknown record kind: " + kind));
    }
  }
  if (num_skills < 0) {
    return util::Status::InvalidArgument("missing 'skills' record");
  }
  return core::Instance::Create(std::move(workers), std::move(tasks),
                                num_skills);
}

util::Result<core::Instance> ReadInstanceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open: " + path);
  }
  return ReadInstance(in);
}

void WriteAssignment(const core::Assignment& assignment, std::ostream& out) {
  out << "worker_id,task_id\n";
  for (const auto& [w, t] : assignment.pairs()) {
    out << w << "," << t << "\n";
  }
}

util::Result<core::Assignment> ReadAssignment(std::istream& in) {
  core::Assignment assignment;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "worker_id,task_id") continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return util::Status::InvalidArgument(
          LineError(line_number, "expected 'worker,task'"));
    }
    int w = 0;
    int t = 0;
    const char* begin = line.data();
    const auto [wp, werr] = std::from_chars(begin, begin + comma, w);
    const auto [tp, terr] = std::from_chars(begin + comma + 1,
                                            begin + line.size(), t);
    if (werr != std::errc() || terr != std::errc() || wp != begin + comma ||
        tp != begin + line.size()) {
      return util::Status::InvalidArgument(
          LineError(line_number, "non-numeric pair: " + line));
    }
    assignment.Add(w, t);
  }
  return assignment;
}

}  // namespace dasc::io
