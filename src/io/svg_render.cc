#include "io/svg_render.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "graph/dag.h"
#include "graph/dag_stats.h"

namespace dasc::io {

namespace {

struct Projector {
  double min_x = 0, min_y = 0, scale_x = 1, scale_y = 1;
  int margin = 30;

  double X(double x) const { return margin + (x - min_x) * scale_x; }
  double Y(double y) const { return margin + (y - min_y) * scale_y; }
};

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

// Depth-shaded fill for tasks: roots light, deep chain members dark.
std::string TaskColor(int depth, int max_depth) {
  const double shade =
      max_depth == 0 ? 0.0 : static_cast<double>(depth) / max_depth;
  const int red = static_cast<int>(230 - 160 * shade);
  const int green = static_cast<int>(120 - 90 * shade);
  return "rgb(" + std::to_string(red) + "," + std::to_string(green) + ",60)";
}

}  // namespace

std::string RenderInstanceSvg(const core::Instance& instance,
                              const core::Assignment* assignment,
                              const SvgOptions& options) {
  // Bounding box over all entities.
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x, max_x = -min_x, max_y = -min_x;
  auto expand = [&](const geo::Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  };
  for (const auto& w : instance.workers()) expand(w.location);
  for (const auto& t : instance.tasks()) expand(t.location);
  if (instance.num_workers() == 0 && instance.num_tasks() == 0) {
    min_x = min_y = 0;
    max_x = max_y = 1;
  }
  Projector proj;
  proj.min_x = min_x;
  proj.min_y = min_y;
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  proj.scale_x = (options.width - 2 * proj.margin) / span_x;
  proj.scale_y = (options.height - 2 * proj.margin) / span_y;

  // Chain depths for shading.
  graph::Dag dag(instance.num_tasks());
  for (const auto& t : instance.tasks()) {
    for (core::TaskId d : t.dependencies) dag.AddDependency(t.id, d);
  }
  const auto depths = graph::DependencyDepths(dag);
  int max_depth = 0;
  if (depths.ok()) {
    for (int d : *depths) max_depth = std::max(max_depth, d);
  }

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\" viewBox=\"0 0 "
      << options.width << " " << options.height << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"#fbfaf7\"/>\n";

  // Dependency arcs (task -> its direct dependencies).
  if (options.draw_dependencies) {
    int drawn = 0;
    svg << "<g stroke=\"#b8b2a6\" stroke-width=\"0.6\" opacity=\"0.55\">\n";
    for (const auto& t : instance.tasks()) {
      for (core::TaskId d : t.dependencies) {
        if (options.max_dependency_edges > 0 &&
            drawn >= options.max_dependency_edges) {
          break;
        }
        const auto& from = instance.task(d).location;
        svg << "<line x1=\"" << Fmt(proj.X(t.location.x)) << "\" y1=\""
            << Fmt(proj.Y(t.location.y)) << "\" x2=\"" << Fmt(proj.X(from.x))
            << "\" y2=\"" << Fmt(proj.Y(from.y)) << "\"/>\n";
        ++drawn;
      }
    }
    svg << "</g>\n";
  }

  // Committed assignments.
  if (assignment != nullptr) {
    svg << "<g stroke=\"#2563eb\" stroke-width=\"1.4\">\n";
    for (const auto& [w, t] : assignment->pairs()) {
      const auto& from = instance.worker(w).location;
      const auto& to = instance.task(t).location;
      svg << "<line x1=\"" << Fmt(proj.X(from.x)) << "\" y1=\""
          << Fmt(proj.Y(from.y)) << "\" x2=\"" << Fmt(proj.X(to.x))
          << "\" y2=\"" << Fmt(proj.Y(to.y)) << "\"/>\n";
    }
    svg << "</g>\n";
  }

  // Tasks.
  svg << "<g stroke=\"#4a4438\" stroke-width=\"0.4\">\n";
  for (const auto& t : instance.tasks()) {
    const int depth =
        depths.ok() ? (*depths)[static_cast<size_t>(t.id)] : 0;
    svg << "<circle cx=\"" << Fmt(proj.X(t.location.x)) << "\" cy=\""
        << Fmt(proj.Y(t.location.y)) << "\" r=\"3.2\" fill=\""
        << TaskColor(depth, max_depth) << "\"><title>task " << t.id
        << " skill " << t.required_skill << " deps "
        << t.dependencies.size() << "</title></circle>\n";
  }
  svg << "</g>\n";

  // Workers (triangles).
  svg << "<g fill=\"#1f7a5c\" stroke=\"#123f30\" stroke-width=\"0.4\">\n";
  for (const auto& w : instance.workers()) {
    const double x = proj.X(w.location.x);
    const double y = proj.Y(w.location.y);
    svg << "<polygon points=\"" << Fmt(x) << "," << Fmt(y - 4.2) << " "
        << Fmt(x - 3.6) << "," << Fmt(y + 3.0) << " " << Fmt(x + 3.6) << ","
        << Fmt(y + 3.0) << "\"><title>worker " << w.id << " skills "
        << w.skills.size() << "</title></polygon>\n";
  }
  svg << "</g>\n";

  // Legend.
  svg << "<g font-family=\"sans-serif\" font-size=\"12\" fill=\"#4a4438\">"
      << "<text x=\"10\" y=\"16\">workers: " << instance.num_workers()
      << " (triangles)  tasks: " << instance.num_tasks()
      << " (circles, darker = deeper in a dependency chain)</text></g>\n";
  svg << "</svg>\n";
  return svg.str();
}

util::Status RenderInstanceSvgFile(const core::Instance& instance,
                                   const std::string& path,
                                   const core::Assignment* assignment,
                                   const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return util::Status::NotFound("cannot open for writing: " + path);
  }
  out << RenderInstanceSvg(instance, assignment, options);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::OK();
}

}  // namespace dasc::io
