// Instance and assignment (de)serialization.
//
// A portable, diff-friendly text format so workloads can be generated once,
// shared, inspected, and replayed:
//
//   # dasc-instance v1
//   skills <r>
//   worker <id> <x> <y> <start> <wait> <velocity> <max_distance> <k> <s1..sk>
//   task   <id> <x> <y> <start> <wait> <skill> <d> <dep1..depd>
//
// Lines starting with '#' are comments. Assignments are CSV:
//   worker_id,task_id
#ifndef DASC_IO_INSTANCE_IO_H_
#define DASC_IO_INSTANCE_IO_H_

#include <iosfwd>
#include <string>

#include "core/assignment.h"
#include "core/instance.h"
#include "util/status.h"

namespace dasc::io {

// Writes `instance` in the dasc-instance v1 format.
void WriteInstance(const core::Instance& instance, std::ostream& out);
util::Status WriteInstanceFile(const core::Instance& instance,
                               const std::string& path);

// Parses the dasc-instance v1 format; validation errors from
// Instance::Create are propagated with line context where possible.
util::Result<core::Instance> ReadInstance(std::istream& in);
util::Result<core::Instance> ReadInstanceFile(const std::string& path);

// Assignment CSV (header "worker_id,task_id").
void WriteAssignment(const core::Assignment& assignment, std::ostream& out);
util::Result<core::Assignment> ReadAssignment(std::istream& in);

}  // namespace dasc::io

#endif  // DASC_IO_INSTANCE_IO_H_
