// SVG rendering of DA-SC workloads.
//
// Draws an instance as a map: tasks as circles (shaded by dependency-chain
// depth), workers as triangles, and dependency arcs between tasks. Useful
// for eyeballing generated workloads and debugging allocation behaviour
// (`dasc_cli render`).
#ifndef DASC_IO_SVG_RENDER_H_
#define DASC_IO_SVG_RENDER_H_

#include <string>

#include "core/assignment.h"
#include "core/instance.h"

namespace dasc::io {

struct SvgOptions {
  int width = 900;
  int height = 900;
  // Draw dependency arcs (can be dense on big workloads).
  bool draw_dependencies = true;
  // Cap on dependency arcs drawn (0 = no cap).
  int max_dependency_edges = 2000;
};

// Renders the instance; if `assignment` is non-null, committed worker->task
// pairs are drawn as solid lines.
std::string RenderInstanceSvg(const core::Instance& instance,
                              const core::Assignment* assignment = nullptr,
                              const SvgOptions& options = {});

// Convenience: render straight to a file.
util::Status RenderInstanceSvgFile(const core::Instance& instance,
                                   const std::string& path,
                                   const core::Assignment* assignment = nullptr,
                                   const SvgOptions& options = {});

}  // namespace dasc::io

#endif  // DASC_IO_SVG_RENDER_H_
