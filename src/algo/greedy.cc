#include "algo/greedy.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "matching/auction.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "matching/sparse_assignment.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/tracing.h"

namespace dasc::algo {

// Cross-batch warm-start store: per associative-set root, the exact solve
// inputs of that root's first evaluation in the previous batch (live member
// list plus availability-filtered candidate rows in instance-global worker
// ids with their travel times) and the solve's result. The next batch reuses
// the result only on a bit-identical snapshot, which makes reuse exact: a
// deterministic solver fed identical inputs returns identical output.
struct GreedyWarmState {
  struct Entry {
    // Solve-input snapshot.
    std::vector<core::TaskId> tasks;           // live members, row order
    std::vector<int64_t> row_off;              // tasks.size() + 1 offsets
    std::vector<core::WorkerId> edge_workers;  // available candidates per row
    std::vector<double> edge_costs;            // travel times, same order
    // True when no candidate edge was dropped by worker availability at
    // snapshot time: the snapshot equals the raw CSR rows of `tasks`. Only
    // such entries are eligible for the dirty-bit fast path below.
    bool unfiltered = false;
    // Solve result.
    bool has_result = false;
    bool feasible = false;
    double cost = 0.0;
    std::vector<core::WorkerId> matched;  // per row, when feasible
  };
  std::unordered_map<core::TaskId, Entry> prev;  // last completed Allocate
  std::unordered_map<core::TaskId, Entry> next;  // being collected now

  // The previous batch's CSR edges + its worker-id column legend, kept so
  // the next Allocate can stamp batch-epoch dirty bits
  // (BatchProblem::MarkEdgesUnchangedSince). An unchanged row + an untouched
  // set + an unfiltered entry lets WarmCheck skip the snapshot build and
  // compare entirely — the O(set edges) cost the store was paying per batch.
  std::shared_ptr<const core::CandidateEdges> prev_edges;
  std::vector<core::WorkerId> prev_worker_ids;
};

namespace {

using core::BatchProblem;
using core::Instance;
using core::TaskId;

// Lifecycle of an associative set's cached matching attempt within a batch.
enum class CacheState : uint8_t {
  kNone,        // no usable attempt; needs a fresh solve
  kFeasible,    // `attempt` is the exact matching for the current inputs
  kInfeasible,  // proven infeasible at the current `remaining` (the
                // historical fail_size skip: worker pools only shrink, so
                // this persists until a member is assigned elsewhere)
  kRepair,      // feasible attempt invalidated by a commit, but its dual
                // certificate (`duals`) allows a delta re-solve
};

// Result of one matching attempt for an associative set.
struct MatchAttempt {
  double cost = 0.0;
  // Parallel arrays: task -> worker index (into problem.workers). A -1
  // worker marks a row dropped by a delta repair (member assigned via
  // another set after the original solve).
  std::vector<TaskId> tasks;
  std::vector<int> workers;
};

// One associative task set tc_r = {r} ∪ (unmet deps of r).
struct AssocSet {
  TaskId root = core::kInvalidId;
  std::vector<TaskId> members;  // built once; filter by `assigned` lazily
  int remaining = 0;            // members not yet assigned this batch
  CacheState cache = CacheState::kNone;
  bool warm_checked = false;  // warm store consulted this batch already
  bool warm_store = false;    // store the next fresh solve into the store
  bool union_touched = false;  // a commit touched this set (member or union
                               // worker consumed); disables the warm fast path
  bool has_duals = false;     // `duals` certifies `attempt` (Hungarian only)
  int last_eval_iter = -1;    // outer iteration of the last evaluation
  MatchAttempt attempt;
  matching::SparseDuals duals;
};

class GreedyRun {
 public:
  GreedyRun(const BatchProblem& problem, const GreedyOptions& options,
            GreedyWarmState* warm)
      : problem_(problem),
        instance_(*problem.instance),
        options_(options),
        candidates_(problem.Candidates()),
        edges_(problem.Edges()),
        warm_(warm) {}

  core::Assignment Run();

  int iterations() const { return iterations_; }
  int64_t match_attempts() const { return match_attempts_; }
  int64_t warm_hits() const { return warm_hits_; }
  int64_t cold_solves() const { return cold_solves_; }
  int64_t fast_hits() const { return fast_hits_; }

 private:
  void BuildAssocSets();
  // Drops stale entries (moved to a smaller class or root already assigned)
  // from buckets_[r] in place, preserving order.
  void CompactBucket(int r);
  // Evaluates one size class in root order and commits the cheapest feasible
  // attempt. Returns true when something was committed.
  bool EvaluateClassAndCommit(std::vector<int>& bucket, core::Assignment* out);
  // Hungarian-only: fans the class's fresh solves out over the global pool
  // when the class is large enough. Selection stays serial, so the result is
  // bit-identical at every thread count.
  void MaybeParallelSolve(const std::vector<int>& bucket);
  // Without the incremental cache, a surviving feasible attempt from an
  // earlier iteration is discarded so the set re-solves (historical
  // solve-everything-every-scan behavior).
  void MaybeDowngrade(AssocSet& set);
  // Fresh evaluation of a kNone set on the calling thread: warm-store check
  // first, then a full solve.
  void EvaluateFresh(AssocSet& set);
  // CSR row views + live member list for a set (unfiltered rows; workers are
  // masked by worker_available_ inside the solvers).
  void BuildRows(const AssocSet& set, std::vector<TaskId>* tasks,
                 std::vector<matching::SparseRow>* rows) const;
  // Full solve of a set with the configured backend; sets cache/attempt.
  // Thread-safe for the Hungarian backend when each thread passes its own
  // solver + scratch (only `set` and the scratch are written).
  void SolveOne(AssocSet& set, matching::SparseAssignmentSolver& solver,
                std::vector<TaskId>& tasks,
                std::vector<matching::SparseRow>& rows);
  // HK / auction backends: dense evaluation over the compacted column union
  // (serial only; uses member scratch).
  void SolveDense(AssocSet& set, const std::vector<TaskId>& tasks,
                  const std::vector<matching::SparseRow>& rows);
  // Consults the warm store. Returns 0 on an exact hit (cache/attempt were
  // filled), 1 on a miss whose snapshot was stored (caller should flag
  // warm_store and store the solve result), 2 when already checked.
  int WarmCheck(AssocSet& set);
  // Records a flagged set's fresh solve result into the warm store.
  void StoreWarmResult(const AssocSet& set);
  // Delta re-solve of an invalidated feasible attempt from its duals.
  void RepairSet(AssocSet& set);
  void Commit(AssocSet& win, core::Assignment* out);

  int iterations_ = 0;
  int64_t match_attempts_ = 0;
  int64_t warm_hits_ = 0;
  int64_t cold_solves_ = 0;
  int64_t fast_hits_ = 0;  // warm hits taken via the dirty-bit fast path
  int outer_iter_ = 0;

  const BatchProblem& problem_;
  const Instance& instance_;
  GreedyOptions options_;
  const core::CandidateSets& candidates_;
  const core::CandidateEdges& edges_;
  GreedyWarmState* warm_ = nullptr;

  std::vector<AssocSet> sets_;
  // For each task id, indices into sets_ whose member list contains it.
  std::vector<std::vector<int>> task_sets_;
  // For each worker index, indices into sets_ whose build-time candidate
  // union contains it. Consuming a worker dirties exactly these sets (a
  // superset of the sets whose *live* union holds it, which only forces a
  // redundant — and therefore still exact — re-solve).
  std::vector<std::vector<int>> worker_sets_;
  std::vector<uint8_t> assigned_;          // per task id, assigned this batch
  std::vector<uint8_t> worker_available_;  // per index into problem_.workers

  // Size-class buckets: buckets_[r] holds candidate indices of sets with
  // remaining == r, compacted and sorted (by root, ascending — the
  // historical tie-break order) lazily.
  std::vector<std::vector<int>> buckets_;
  std::vector<uint8_t> bucket_sorted_;
  int max_bucket_ = 0;

  matching::SparseAssignmentSolver solver_;  // serial solver
  std::vector<TaskId> tasks_scratch_;
  std::vector<matching::SparseRow> rows_scratch_;
  std::vector<uint8_t> row_live_scratch_;
  std::vector<int> pending_;  // parallel-phase set indices

  // Dense-backend column compaction scratch (first-appearance order, the
  // same order the historical per-attempt hash map produced).
  std::vector<int> col_stamp_;
  std::vector<int> col_rank_;
  std::vector<int32_t> col_list_;
  int col_epoch_ = 0;

  // Commit-time touch dedup.
  std::vector<int> touch_stamp_;
  std::vector<uint8_t> touch_member_;
  std::vector<int> touched_;
  int commit_seq_ = 0;

  // instance worker id -> index into problem_.workers (warm start only).
  std::vector<int> worker_index_of_id_;
};

void GreedyRun::BuildAssocSets() {
  std::vector<uint8_t> open(static_cast<size_t>(instance_.num_tasks()), 0);
  for (TaskId t : problem_.open_tasks) open[static_cast<size_t>(t)] = 1;

  sets_.reserve(problem_.open_tasks.size());
  for (TaskId root : problem_.open_tasks) {
    AssocSet set;
    set.root = root;
    set.members.push_back(root);
    bool servable = true;
    for (TaskId f : instance_.DepClosure(root)) {
      if (problem_.TaskAssignedBefore(f)) continue;  // dependency credit
      if (!problem_.in_batch_dependency_credit) {
        // Completion-based mode: only previously-satisfied dependencies
        // count; the root must wait for a later batch.
        servable = false;
        break;
      }
      if (!open[static_cast<size_t>(f)]) {
        // A dependency is neither satisfied nor open (expired or not yet
        // arrived): the root cannot be legally assigned this batch.
        servable = false;
        break;
      }
      set.members.push_back(f);
    }
    if (!servable) continue;
    // A member with no feasible worker at all blocks the set permanently
    // (candidate sets only shrink during the run).
    for (TaskId m : set.members) {
      if (candidates_.task_workers[static_cast<size_t>(m)].empty()) {
        servable = false;
        break;
      }
    }
    if (!servable) continue;
    set.remaining = static_cast<int>(set.members.size());
    sets_.push_back(std::move(set));
  }

  task_sets_.assign(static_cast<size_t>(instance_.num_tasks()), {});
  worker_sets_.assign(problem_.workers.size(), {});
  std::vector<int> worker_stamp(problem_.workers.size(), -1);
  for (size_t si = 0; si < sets_.size(); ++si) {
    for (TaskId m : sets_[si].members) {
      task_sets_[static_cast<size_t>(m)].push_back(static_cast<int>(si));
      for (int wi : candidates_.task_workers[static_cast<size_t>(m)]) {
        if (worker_stamp[static_cast<size_t>(wi)] == static_cast<int>(si)) {
          continue;  // already recorded for this set
        }
        worker_stamp[static_cast<size_t>(wi)] = static_cast<int>(si);
        worker_sets_[static_cast<size_t>(wi)].push_back(static_cast<int>(si));
      }
    }
  }
}

void GreedyRun::CompactBucket(int r) {
  std::vector<int>& bucket = buckets_[static_cast<size_t>(r)];
  size_t keep = 0;
  for (int si : bucket) {
    const AssocSet& set = sets_[static_cast<size_t>(si)];
    if (set.remaining != r) continue;  // moved to a smaller class
    if (assigned_[static_cast<size_t>(set.root)]) {
      // Root got assigned as a dependency of another set; the set is done.
      continue;
    }
    bucket[keep++] = si;
  }
  bucket.resize(keep);
}

void GreedyRun::MaybeDowngrade(AssocSet& set) {
  if (options_.incremental_cache) return;
  if (set.last_eval_iter == outer_iter_) return;
  if (set.cache == CacheState::kFeasible || set.cache == CacheState::kRepair) {
    set.cache = CacheState::kNone;
    set.has_duals = false;
  }
}

void GreedyRun::BuildRows(const AssocSet& set, std::vector<TaskId>* tasks,
                          std::vector<matching::SparseRow>* rows) const {
  tasks->clear();
  rows->clear();
  for (TaskId m : set.members) {
    if (assigned_[static_cast<size_t>(m)]) continue;
    tasks->push_back(m);
    const int64_t b = edges_.row_begin[static_cast<size_t>(m)];
    const int64_t e = edges_.row_begin[static_cast<size_t>(m) + 1];
    rows->push_back({edges_.workers.data() + b, edges_.travel_time.data() + b,
                     e - b});
  }
}

void GreedyRun::SolveOne(AssocSet& set, matching::SparseAssignmentSolver& solver,
                         std::vector<TaskId>& tasks,
                         std::vector<matching::SparseRow>& rows) {
  BuildRows(set, &tasks, &rows);
  set.last_eval_iter = outer_iter_;
  set.has_duals = false;
  if (tasks.empty()) {
    set.cache = CacheState::kInfeasible;
    return;
  }
  if (options_.backend == GreedyOptions::MatchingBackend::kHungarian) {
    matching::SparseAssignmentResult result = solver.Solve(
        rows.data(), static_cast<int>(tasks.size()), worker_available_.data(),
        options_.delta_repair ? &set.duals : nullptr);
    if (!result.feasible) {
      set.cache = CacheState::kInfeasible;
      return;
    }
    set.attempt.cost = result.cost;
    set.attempt.tasks = tasks;
    set.attempt.workers.assign(result.row_to_col.begin(),
                               result.row_to_col.end());
    set.has_duals = options_.delta_repair;
    set.cache = CacheState::kFeasible;
    return;
  }
  SolveDense(set, tasks, rows);
}

void GreedyRun::SolveDense(AssocSet& set, const std::vector<TaskId>& tasks,
                           const std::vector<matching::SparseRow>& rows) {
  // Compact the available column union in first-appearance order — the
  // column order the historical per-attempt hash map produced.
  ++col_epoch_;
  col_list_.clear();
  for (const matching::SparseRow& row : rows) {
    for (int64_t e = 0; e < row.size; ++e) {
      const int32_t wi = row.cols[e];
      if (!worker_available_[static_cast<size_t>(wi)]) continue;
      if (col_stamp_[static_cast<size_t>(wi)] == col_epoch_) continue;
      col_stamp_[static_cast<size_t>(wi)] = col_epoch_;
      col_rank_[static_cast<size_t>(wi)] = static_cast<int>(col_list_.size());
      col_list_.push_back(wi);
    }
  }
  const size_t n = tasks.size();
  if (n > col_list_.size()) {
    set.cache = CacheState::kInfeasible;
    return;
  }

  if (options_.backend == GreedyOptions::MatchingBackend::kHopcroftKarp) {
    matching::HopcroftKarp hk(static_cast<int>(n),
                              static_cast<int>(col_list_.size()));
    for (size_t r = 0; r < n; ++r) {
      for (int64_t e = 0; e < rows[r].size; ++e) {
        const int32_t wi = rows[r].cols[e];
        if (!worker_available_[static_cast<size_t>(wi)]) continue;
        hk.AddEdge(static_cast<int>(r), col_rank_[static_cast<size_t>(wi)]);
      }
    }
    if (hk.MaxMatching() != static_cast<int>(n)) {
      set.cache = CacheState::kInfeasible;
      return;
    }
    set.attempt.cost = 0.0;
    set.attempt.tasks = tasks;
    set.attempt.workers.resize(n);
    for (size_t r = 0; r < n; ++r) {
      set.attempt.workers[r] = col_list_[static_cast<size_t>(
          hk.MatchOfLeft(static_cast<int>(r)))];
    }
    set.cache = CacheState::kFeasible;
    return;
  }

  // Auction: near-min-cost dense assignment over the compacted matrix.
  std::vector<std::vector<double>> cost(
      n, std::vector<double>(col_list_.size(), matching::kInfeasible));
  for (size_t r = 0; r < n; ++r) {
    for (int64_t e = 0; e < rows[r].size; ++e) {
      const int32_t wi = rows[r].cols[e];
      if (!worker_available_[static_cast<size_t>(wi)]) continue;
      cost[r][static_cast<size_t>(col_rank_[static_cast<size_t>(wi)])] =
          rows[r].costs[e];
    }
  }
  matching::AuctionOptions auction_options;
  auction_options.epsilon = options_.auction_epsilon;
  matching::HungarianResult result =
      matching::AuctionAssignment(cost, auction_options);
  if (!result.feasible) {
    set.cache = CacheState::kInfeasible;
    return;
  }
  set.attempt.cost = result.cost;
  set.attempt.tasks = tasks;
  set.attempt.workers.resize(n);
  for (size_t r = 0; r < n; ++r) {
    set.attempt.workers[r] =
        col_list_[static_cast<size_t>(result.row_to_col[r])];
  }
  set.cache = CacheState::kFeasible;
}

int GreedyRun::WarmCheck(AssocSet& set) {
  if (set.warm_checked) return 2;

  // Dirty-bit fast path: when (a) no commit has touched this set — so every
  // member is unassigned and every worker in any member's candidate row is
  // still available, (b) the stored entry's snapshot was unfiltered and its
  // task list is exactly the member list, and (c) every member row carries
  // this batch's "unchanged" epoch bit, this batch's filtered snapshot is
  // provably bit-identical to the stored one: filtered == raw rows (a) ==
  // previous raw rows (c) == previous snapshot (b). Reuse without building
  // or comparing anything — O(|members|) instead of O(set edges).
  if (!set.union_touched && !edges_.row_unchanged.empty()) {
    const auto it = warm_->prev.find(set.root);
    if (it != warm_->prev.end() && it->second.has_result &&
        it->second.unfiltered && it->second.tasks == set.members) {
      bool rows_unchanged = true;
      for (TaskId m : set.members) {
        if (!edges_.row_unchanged[static_cast<size_t>(m)]) {
          rows_unchanged = false;
          break;
        }
      }
      if (rows_unchanged) {
        set.warm_checked = true;
        GreedyWarmState::Entry& hit = it->second;
        set.last_eval_iter = outer_iter_;
        set.has_duals = false;
        if (!hit.feasible) {
          set.cache = CacheState::kInfeasible;
        } else {
          set.attempt.cost = hit.cost;
          set.attempt.tasks = hit.tasks;
          set.attempt.workers.resize(hit.matched.size());
          for (size_t r = 0; r < hit.matched.size(); ++r) {
            const int wi =
                worker_index_of_id_[static_cast<size_t>(hit.matched[r])];
            DASC_CHECK_GE(wi, 0);
            set.attempt.workers[r] = wi;
          }
          set.cache = CacheState::kFeasible;
        }
        ++fast_hits_;
        // The entry still describes this batch's inputs exactly, so it
        // carries forward unchanged (chainable across idle batches).
        warm_->next[set.root] = std::move(hit);
        return 0;
      }
    }
  }
  set.warm_checked = true;

  // Snapshot the exact solve inputs in instance-global worker ids (stable
  // across batches, unlike problem.workers indices).
  GreedyWarmState::Entry snap;
  snap.unfiltered = true;
  for (TaskId m : set.members) {
    if (assigned_[static_cast<size_t>(m)]) {
      snap.unfiltered = false;  // a row is missing vs. the raw member list
      continue;
    }
    snap.tasks.push_back(m);
  }
  snap.row_off.reserve(snap.tasks.size() + 1);
  snap.row_off.push_back(0);
  for (TaskId m : snap.tasks) {
    const int64_t b = edges_.row_begin[static_cast<size_t>(m)];
    const int64_t e = edges_.row_begin[static_cast<size_t>(m) + 1];
    for (int64_t i = b; i < e; ++i) {
      const int32_t wi = edges_.workers[static_cast<size_t>(i)];
      if (!worker_available_[static_cast<size_t>(wi)]) {
        snap.unfiltered = false;  // an edge was dropped by availability
        continue;
      }
      snap.edge_workers.push_back(problem_.workers[static_cast<size_t>(wi)].id);
      snap.edge_costs.push_back(edges_.travel_time[static_cast<size_t>(i)]);
    }
    snap.row_off.push_back(static_cast<int64_t>(snap.edge_workers.size()));
  }

  int rc = 1;
  const auto it = warm_->prev.find(set.root);
  if (it != warm_->prev.end() && it->second.has_result &&
      it->second.tasks == snap.tasks && it->second.row_off == snap.row_off &&
      it->second.edge_workers == snap.edge_workers &&
      it->second.edge_costs == snap.edge_costs) {
    // Bit-identical inputs: the stored result IS what a fresh solve would
    // return (exact double equality above — any drift falls back cold).
    const GreedyWarmState::Entry& hit = it->second;
    set.last_eval_iter = outer_iter_;
    set.has_duals = false;
    if (!hit.feasible) {
      set.cache = CacheState::kInfeasible;
    } else {
      set.attempt.cost = hit.cost;
      set.attempt.tasks = snap.tasks;
      set.attempt.workers.resize(snap.tasks.size());
      for (size_t r = 0; r < snap.tasks.size(); ++r) {
        const int wi = worker_index_of_id_[static_cast<size_t>(hit.matched[r])];
        DASC_CHECK_GE(wi, 0);
        set.attempt.workers[r] = wi;
      }
      set.cache = CacheState::kFeasible;
    }
    snap.has_result = true;
    snap.feasible = hit.feasible;
    snap.cost = hit.cost;
    snap.matched = hit.matched;
    rc = 0;
  }
  warm_->next[set.root] = std::move(snap);
  return rc;
}

void GreedyRun::StoreWarmResult(const AssocSet& set) {
  const auto it = warm_->next.find(set.root);
  if (it == warm_->next.end()) return;
  GreedyWarmState::Entry& entry = it->second;
  entry.has_result = true;
  entry.feasible = set.cache == CacheState::kFeasible;
  if (entry.feasible) {
    entry.cost = set.attempt.cost;
    entry.matched.resize(set.attempt.workers.size());
    for (size_t r = 0; r < set.attempt.workers.size(); ++r) {
      entry.matched[r] =
          problem_.workers[static_cast<size_t>(set.attempt.workers[r])].id;
    }
  }
}

void GreedyRun::RepairSet(AssocSet& set) {
  MatchAttempt& attempt = set.attempt;
  const int n = static_cast<int>(attempt.tasks.size());
  rows_scratch_.clear();
  row_live_scratch_.clear();
  for (int r = 0; r < n; ++r) {
    const TaskId m = attempt.tasks[static_cast<size_t>(r)];
    const int64_t b = edges_.row_begin[static_cast<size_t>(m)];
    const int64_t e = edges_.row_begin[static_cast<size_t>(m) + 1];
    rows_scratch_.push_back({edges_.workers.data() + b,
                             edges_.travel_time.data() + b, e - b});
    row_live_scratch_.push_back(assigned_[static_cast<size_t>(m)] ? 0 : 1);
  }
  matching::SparseAssignmentResult prev;
  prev.feasible = true;
  prev.cost = attempt.cost;
  prev.row_to_col.assign(attempt.workers.begin(), attempt.workers.end());

  util::WallTimer timer;
  const int repaired =
      solver_.Repair(rows_scratch_.data(), n, worker_available_.data(),
                     row_live_scratch_.data(), &prev, &set.duals);
  DASC_METRIC_HISTOGRAM_OBSERVE("matching_delta_repair_ms",
                                timer.ElapsedMillis());
  set.last_eval_iter = outer_iter_;
  if (repaired < 0) {
    set.cache = CacheState::kInfeasible;
    set.has_duals = false;
    return;
  }
  attempt.cost = prev.cost;
  attempt.workers.assign(prev.row_to_col.begin(), prev.row_to_col.end());
  set.cache = CacheState::kFeasible;  // duals were updated in place
}

void GreedyRun::EvaluateFresh(AssocSet& set) {
  if (options_.warm_start && warm_ != nullptr && !set.warm_checked) {
    const int wc = WarmCheck(set);
    if (wc == 0) {
      ++warm_hits_;
      return;
    }
    if (wc == 1) set.warm_store = true;
  }
  ++cold_solves_;
  SolveOne(set, solver_, tasks_scratch_, rows_scratch_);
  if (set.warm_store) {
    StoreWarmResult(set);
    set.warm_store = false;
  }
}

void GreedyRun::MaybeParallelSolve(const std::vector<int>& bucket) {
  if (options_.backend != GreedyOptions::MatchingBackend::kHungarian) return;
  if (options_.parallel_solve_threshold <= 0) return;
  if (static_cast<int>(bucket.size()) < options_.parallel_solve_threshold) {
    return;
  }
  if (util::Threads() <= 1) return;

  // Serial pre-pass: warm-store checks touch shared state, so only fully
  // cold sets reach the parallel phase.
  pending_.clear();
  for (int si : bucket) {
    AssocSet& set = sets_[static_cast<size_t>(si)];
    MaybeDowngrade(set);
    if (set.cache != CacheState::kNone) continue;
    if (options_.warm_start && warm_ != nullptr && !set.warm_checked) {
      const int wc = WarmCheck(set);
      if (wc == 0) {
        ++warm_hits_;
        continue;
      }
      if (wc == 1) set.warm_store = true;
    }
    pending_.push_back(si);
  }
  if (pending_.empty()) return;
  cold_solves_ += static_cast<int64_t>(pending_.size());

  // Each chunk gets its own solver and scratch; a solve writes only its own
  // set, so any chunk decomposition yields the same per-set results and the
  // serial selection afterwards is bit-identical at every thread count.
  util::ParallelFor(
      0, static_cast<int64_t>(pending_.size()), /*grain=*/8,
      [&](int64_t lo, int64_t hi) {
        matching::SparseAssignmentSolver solver;
        solver.Reset(static_cast<int>(problem_.workers.size()));
        std::vector<TaskId> tasks;
        std::vector<matching::SparseRow> rows;
        for (int64_t i = lo; i < hi; ++i) {
          SolveOne(sets_[static_cast<size_t>(pending_[static_cast<size_t>(i)])],
                   solver, tasks, rows);
        }
      });
  for (int si : pending_) {
    AssocSet& set = sets_[static_cast<size_t>(si)];
    if (set.warm_store) {
      StoreWarmResult(set);
      set.warm_store = false;
    }
  }
}

bool GreedyRun::EvaluateClassAndCommit(std::vector<int>& bucket,
                                       core::Assignment* out) {
  MaybeParallelSolve(bucket);

  int best = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int si : bucket) {
    AssocSet& set = sets_[static_cast<size_t>(si)];
    MaybeDowngrade(set);
    if (set.cache == CacheState::kInfeasible) {
      // Freshly-proven infeasibility (this scan's parallel phase or warm
      // check) counts as an attempt; skipping a carry-over from an earlier
      // iteration does not (the historical fail_size skip).
      if (set.last_eval_iter == outer_iter_) ++match_attempts_;
      continue;
    }
    ++match_attempts_;
    switch (set.cache) {
      case CacheState::kNone:
        EvaluateFresh(set);
        break;
      case CacheState::kRepair:
        RepairSet(set);
        if (set.cache == CacheState::kFeasible) ++warm_hits_;
        break;
      case CacheState::kFeasible:
        // Untouched since its solve: the inputs are unchanged, so the cached
        // attempt is exactly what a re-solve would return.
        if (set.last_eval_iter != outer_iter_) ++warm_hits_;
        break;
      case CacheState::kInfeasible:
        break;  // unreachable
    }
    if (set.cache != CacheState::kFeasible) continue;
    if (best < 0 || set.attempt.cost < best_cost) {
      best = si;
      best_cost = set.attempt.cost;
    }
    if (options_.backend == GreedyOptions::MatchingBackend::kHopcroftKarp) {
      break;  // no cost tie-breaking: first feasible wins
    }
  }
  if (best < 0) return false;
  Commit(sets_[static_cast<size_t>(best)], out);
  return true;
}

void GreedyRun::Commit(AssocSet& win, core::Assignment* out) {
  ++commit_seq_;
  touched_.clear();
  const auto touch = [&](int si, bool member) {
    if (touch_stamp_[static_cast<size_t>(si)] != commit_seq_) {
      touch_stamp_[static_cast<size_t>(si)] = commit_seq_;
      touch_member_[static_cast<size_t>(si)] = 0;
      touched_.push_back(si);
    }
    if (member) touch_member_[static_cast<size_t>(si)] = 1;
  };

  for (size_t r = 0; r < win.attempt.tasks.size(); ++r) {
    const int wi = win.attempt.workers[r];
    if (wi < 0) continue;  // row dropped by an earlier delta repair
    const TaskId m = win.attempt.tasks[r];
    out->Add(problem_.workers[static_cast<size_t>(wi)].id, m);
    DASC_CHECK(!assigned_[static_cast<size_t>(m)]);
    DASC_CHECK(worker_available_[static_cast<size_t>(wi)]);
    assigned_[static_cast<size_t>(m)] = 1;
    worker_available_[static_cast<size_t>(wi)] = 0;
    for (int si : task_sets_[static_cast<size_t>(m)]) {
      --sets_[static_cast<size_t>(si)].remaining;
      sets_[static_cast<size_t>(si)].union_touched = true;
      touch(si, /*member=*/true);
    }
    for (int si : worker_sets_[static_cast<size_t>(wi)]) {
      sets_[static_cast<size_t>(si)].union_touched = true;
      touch(si, /*member=*/false);
    }
  }

  for (int si : touched_) {
    AssocSet& set = sets_[static_cast<size_t>(si)];
    switch (set.cache) {
      case CacheState::kFeasible:
        // The cached matching may use a consumed worker or a now-assigned
        // member; either repair from the dual certificate or re-solve.
        set.cache = (options_.delta_repair && set.has_duals)
                        ? CacheState::kRepair
                        : CacheState::kNone;
        break;
      case CacheState::kInfeasible:
        if (touch_member_[static_cast<size_t>(si)]) {
          // The set shrank: infeasibility no longer proven (fail_size reset).
          set.cache = CacheState::kNone;
          set.has_duals = false;
        }
        break;
      case CacheState::kNone:
      case CacheState::kRepair:
        break;
    }
    if (touch_member_[static_cast<size_t>(si)] && set.remaining > 0 &&
        !assigned_[static_cast<size_t>(set.root)]) {
      buckets_[static_cast<size_t>(set.remaining)].push_back(si);
      bucket_sorted_[static_cast<size_t>(set.remaining)] = 0;
    }
  }
}

core::Assignment GreedyRun::Run() {
  core::Assignment out;
  assigned_.assign(static_cast<size_t>(instance_.num_tasks()), 0);
  worker_available_.assign(problem_.workers.size(), 1);
  BuildAssocSets();

  solver_.Reset(static_cast<int>(problem_.workers.size()));
  col_stamp_.assign(problem_.workers.size(), -1);
  col_rank_.assign(problem_.workers.size(), 0);
  touch_stamp_.assign(sets_.size(), 0);
  touch_member_.assign(sets_.size(), 0);
  if (options_.warm_start && warm_ != nullptr) {
    worker_index_of_id_.assign(static_cast<size_t>(instance_.num_workers()),
                               -1);
    for (size_t i = 0; i < problem_.workers.size(); ++i) {
      worker_index_of_id_[static_cast<size_t>(problem_.workers[i].id)] =
          static_cast<int>(i);
    }
  }

  max_bucket_ = 0;
  for (const AssocSet& set : sets_) max_bucket_ = std::max(max_bucket_, set.remaining);
  buckets_.assign(static_cast<size_t>(max_bucket_) + 1, {});
  bucket_sorted_.assign(static_cast<size_t>(max_bucket_) + 1, 0);
  for (size_t si = 0; si < sets_.size(); ++si) {
    buckets_[static_cast<size_t>(sets_[si].remaining)].push_back(
        static_cast<int>(si));
  }

  // Iteration of Algorithm 1: walk size classes in decreasing order and
  // commit the first (cheapest under Hungarian ties) class with a feasible
  // matching; committing re-shrinks the touched sets, so the walk restarts
  // from the top. Buckets + the attempt cache replace the historical
  // sort-everything / solve-everything per scan.
  while (true) {
    bool committed = false;
    ++outer_iter_;
    for (int r = max_bucket_; r >= 1; --r) {
      std::vector<int>& bucket = buckets_[static_cast<size_t>(r)];
      CompactBucket(r);
      if (bucket.empty()) {
        if (r == max_bucket_) --max_bucket_;
        continue;
      }
      if (!bucket_sorted_[static_cast<size_t>(r)]) {
        std::sort(bucket.begin(), bucket.end(), [&](int a, int b) {
          return sets_[static_cast<size_t>(a)].root <
                 sets_[static_cast<size_t>(b)].root;
        });
        bucket_sorted_[static_cast<size_t>(r)] = 1;
      }
      if (EvaluateClassAndCommit(bucket, &out)) {
        ++iterations_;
        committed = true;
        break;
      }
    }
    if (!committed) break;
  }
  return out;
}

}  // namespace

GreedyAllocator::GreedyAllocator(GreedyOptions options) : options_(options) {}

GreedyAllocator::~GreedyAllocator() = default;

core::Assignment GreedyAllocator::Allocate(const core::BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  // Force candidate construction before opening the span so candidate_build
  // traces as a sibling of matching, not a child. The CSR edge layout is
  // derived from the candidates inside the span.
  problem.Candidates();
  DASC_TRACE_SPAN("matching");
  DASC_FLIGHT_SPAN("matching");
  if (options_.warm_start && warm_ == nullptr) {
    warm_ = std::make_unique<GreedyWarmState>();
  }
  if (options_.warm_start && warm_->prev_edges != nullptr) {
    const core::CandidateEdges& cur = problem.Edges();
    if (cur.publish_seq >= 0 &&
        (warm_->prev_edges->publish_seq == cur.publish_seq - 1 ||
         warm_->prev_edges.get() == &cur) &&
        !cur.row_unchanged.empty()) {
      // The incremental candidate view prefilled row_unchanged at publish
      // time, relative to exactly warm_->prev_edges (consecutive
      // publish_seq — or the very same object re-stamped by the zero-delta
      // publish-reuse path): the O(edges) compare is already done.
      DASC_METRIC_COUNTER_INC("matching_epoch_prefill_hits_total");
    } else {
      // Stamp batch-epoch dirty bits against the previous batch's edges so
      // WarmCheck can take the snapshot-free fast path on unchanged rows.
      problem.MarkEdgesUnchangedSince(*warm_->prev_edges,
                                      warm_->prev_worker_ids);
    }
  }
  GreedyRun run(problem, options_, options_.warm_start ? warm_.get() : nullptr);
  core::Assignment assignment = run.Run();
  last_iterations_ = run.iterations();
  last_match_attempts_ = run.match_attempts();
  last_warm_hits_ = run.warm_hits();
  last_cold_solves_ = run.cold_solves();
  DASC_METRIC_COUNTER_ADD("greedy_iterations_total", last_iterations_);
  DASC_METRIC_COUNTER_ADD("greedy_match_attempts_total", last_match_attempts_);
  DASC_METRIC_COUNTER_ADD("matching_warm_start_hits_total", last_warm_hits_);
  DASC_METRIC_COUNTER_ADD("matching_warm_fastpath_hits_total",
                          run.fast_hits());
  DASC_METRIC_COUNTER_ADD("matching_cold_solves_total", last_cold_solves_);
  if (warm_ != nullptr) {
    warm_->prev = std::move(warm_->next);
    warm_->next.clear();
    warm_->prev_edges = problem.edges_cache;
    warm_->prev_worker_ids.resize(problem.workers.size());
    for (size_t i = 0; i < problem.workers.size(); ++i) {
      warm_->prev_worker_ids[i] = problem.workers[i].id;
    }
  }
  return assignment;
}

}  // namespace dasc::algo
