#include "algo/greedy.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "matching/auction.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/tracing.h"

namespace dasc::algo {

namespace {

using core::BatchProblem;
using core::Instance;
using core::TaskId;

// One associative task set tc_r = {r} ∪ (unmet deps of r).
struct AssocSet {
  TaskId root = core::kInvalidId;
  std::vector<TaskId> members;  // built once; filter by `assigned` lazily
  int remaining = 0;            // members not yet assigned this batch
  int fail_size = -1;           // `remaining` at the last failed match, or -1
  bool dead = false;            // permanently unservable in this batch
};

// Result of one matching attempt for an associative set.
struct MatchAttempt {
  bool feasible = false;
  double cost = 0.0;
  // Parallel arrays: task -> worker index (into problem.workers).
  std::vector<TaskId> tasks;
  std::vector<int> workers;
};

class GreedyRun {
 public:
  GreedyRun(const BatchProblem& problem, const GreedyOptions& options)
      : problem_(problem),
        instance_(*problem.instance),
        options_(options),
        candidates_(problem.Candidates()) {}

  core::Assignment Run();

  int iterations() const { return iterations_; }
  int64_t match_attempts() const { return match_attempts_; }

 private:
  void BuildAssocSets();
  MatchAttempt TryMatch(const AssocSet& set) const;
  void Commit(const MatchAttempt& attempt, core::Assignment* out);

  int iterations_ = 0;
  mutable int64_t match_attempts_ = 0;

  const BatchProblem& problem_;
  const Instance& instance_;
  GreedyOptions options_;
  const core::CandidateSets& candidates_;

  std::vector<AssocSet> sets_;
  // For each task id, indices into sets_ whose member list contains it.
  std::unordered_map<TaskId, std::vector<int>> containing_sets_;
  std::vector<uint8_t> assigned_;          // per task id, assigned this batch
  std::vector<uint8_t> worker_available_;  // per index into problem_.workers
};

void GreedyRun::BuildAssocSets() {
  std::vector<uint8_t> open(static_cast<size_t>(instance_.num_tasks()), 0);
  for (TaskId t : problem_.open_tasks) open[static_cast<size_t>(t)] = 1;

  sets_.reserve(problem_.open_tasks.size());
  for (TaskId root : problem_.open_tasks) {
    AssocSet set;
    set.root = root;
    set.members.push_back(root);
    bool servable = true;
    for (TaskId f : instance_.DepClosure(root)) {
      if (problem_.TaskAssignedBefore(f)) continue;  // dependency credit
      if (!problem_.in_batch_dependency_credit) {
        // Completion-based mode: only previously-satisfied dependencies
        // count; the root must wait for a later batch.
        servable = false;
        break;
      }
      if (!open[static_cast<size_t>(f)]) {
        // A dependency is neither satisfied nor open (expired or not yet
        // arrived): the root cannot be legally assigned this batch.
        servable = false;
        break;
      }
      set.members.push_back(f);
    }
    if (!servable) continue;
    // A member with no feasible worker at all blocks the set permanently
    // (candidate sets only shrink during the run).
    for (TaskId m : set.members) {
      if (candidates_.task_workers[static_cast<size_t>(m)].empty()) {
        servable = false;
        break;
      }
    }
    if (!servable) continue;
    set.remaining = static_cast<int>(set.members.size());
    const int index = static_cast<int>(sets_.size());
    for (TaskId m : set.members) containing_sets_[m].push_back(index);
    sets_.push_back(std::move(set));
  }
}

MatchAttempt GreedyRun::TryMatch(const AssocSet& set) const {
  ++match_attempts_;
  MatchAttempt attempt;
  // Live members and the union of their available candidate workers.
  std::vector<TaskId> tasks;
  tasks.reserve(static_cast<size_t>(set.remaining));
  std::vector<int> columns;  // worker indices
  std::unordered_map<int, int> column_of;
  for (TaskId m : set.members) {
    if (assigned_[static_cast<size_t>(m)]) continue;
    tasks.push_back(m);
    for (int wi : candidates_.task_workers[static_cast<size_t>(m)]) {
      if (!worker_available_[static_cast<size_t>(wi)]) continue;
      if (column_of.emplace(wi, static_cast<int>(columns.size())).second) {
        columns.push_back(wi);
      }
    }
  }
  if (tasks.empty() || tasks.size() > columns.size()) return attempt;

  if (options_.backend == GreedyOptions::MatchingBackend::kHopcroftKarp) {
    matching::HopcroftKarp hk(static_cast<int>(tasks.size()),
                              static_cast<int>(columns.size()));
    for (size_t r = 0; r < tasks.size(); ++r) {
      for (int wi : candidates_.task_workers[static_cast<size_t>(tasks[r])]) {
        if (!worker_available_[static_cast<size_t>(wi)]) continue;
        hk.AddEdge(static_cast<int>(r), column_of.at(wi));
      }
    }
    if (hk.MaxMatching() != static_cast<int>(tasks.size())) return attempt;
    attempt.feasible = true;
    attempt.tasks = tasks;
    attempt.workers.resize(tasks.size());
    for (size_t r = 0; r < tasks.size(); ++r) {
      attempt.workers[r] =
          columns[static_cast<size_t>(hk.MatchOfLeft(static_cast<int>(r)))];
    }
    return attempt;
  }

  // Cost-aware backends: minimize total travel time among feasible
  // matchings (exactly with Hungarian, within rows*epsilon with the
  // auction).
  std::vector<std::vector<double>> cost(
      tasks.size(),
      std::vector<double>(columns.size(), matching::kInfeasible));
  for (size_t r = 0; r < tasks.size(); ++r) {
    const TaskId m = tasks[r];
    for (int wi : candidates_.task_workers[static_cast<size_t>(m)]) {
      if (!worker_available_[static_cast<size_t>(wi)]) continue;
      const core::WorkerState& state = problem_.workers[static_cast<size_t>(wi)];
      const double dist = core::ServeDistance(instance_, state, m, problem_.params);
      const double travel_time = dist / instance_.worker(state.id).velocity;
      cost[r][static_cast<size_t>(column_of.at(wi))] = travel_time;
    }
  }
  matching::HungarianResult result;
  if (options_.backend == GreedyOptions::MatchingBackend::kAuction) {
    matching::AuctionOptions auction_options;
    auction_options.epsilon = options_.auction_epsilon;
    result = matching::AuctionAssignment(cost, auction_options);
  } else {
    result = matching::SolveAssignment(cost);
  }
  if (!result.feasible) return attempt;
  attempt.feasible = true;
  attempt.cost = result.cost;
  attempt.tasks = tasks;
  attempt.workers.resize(tasks.size());
  for (size_t r = 0; r < tasks.size(); ++r) {
    attempt.workers[r] = columns[static_cast<size_t>(result.row_to_col[r])];
  }
  return attempt;
}

void GreedyRun::Commit(const MatchAttempt& attempt, core::Assignment* out) {
  for (size_t r = 0; r < attempt.tasks.size(); ++r) {
    const TaskId m = attempt.tasks[r];
    const int wi = attempt.workers[r];
    out->Add(problem_.workers[static_cast<size_t>(wi)].id, m);
    DASC_CHECK(!assigned_[static_cast<size_t>(m)]);
    DASC_CHECK(worker_available_[static_cast<size_t>(wi)]);
    assigned_[static_cast<size_t>(m)] = 1;
    worker_available_[static_cast<size_t>(wi)] = 0;
    auto it = containing_sets_.find(m);
    if (it != containing_sets_.end()) {
      for (int si : it->second) {
        AssocSet& set = sets_[static_cast<size_t>(si)];
        if (!set.dead) --set.remaining;
      }
    }
  }
}

core::Assignment GreedyRun::Run() {
  core::Assignment out;
  assigned_.assign(static_cast<size_t>(instance_.num_tasks()), 0);
  worker_available_.assign(problem_.workers.size(), 1);
  BuildAssocSets();

  // Iteration of Algorithm 1: evaluate associative sets in decreasing order
  // of current size, commit the first (cheapest under Hungarian ties) size
  // class with a feasible matching. A set that failed at size k can only
  // become feasible again after it shrinks (worker pools only shrink), which
  // fail_size tracks.
  while (true) {
    // Order live sets by size descending.
    std::vector<int> order;
    order.reserve(sets_.size());
    for (size_t i = 0; i < sets_.size(); ++i) {
      const AssocSet& set = sets_[i];
      if (set.dead || set.remaining <= 0) continue;
      if (assigned_[static_cast<size_t>(set.root)]) {
        // Root got assigned as a dependency of another set; the set is done.
        continue;
      }
      order.push_back(static_cast<int>(i));
    }
    if (order.empty()) break;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const int ra = sets_[static_cast<size_t>(a)].remaining;
      const int rb = sets_[static_cast<size_t>(b)].remaining;
      if (ra != rb) return ra > rb;
      return sets_[static_cast<size_t>(a)].root <
             sets_[static_cast<size_t>(b)].root;
    });

    bool committed = false;
    size_t i = 0;
    while (i < order.size()) {
      const int size_class = sets_[static_cast<size_t>(order[i])].remaining;
      // Evaluate the whole size class, pick the cheapest feasible attempt.
      MatchAttempt best;
      double best_cost = std::numeric_limits<double>::infinity();
      size_t j = i;
      for (; j < order.size() &&
             sets_[static_cast<size_t>(order[j])].remaining == size_class;
           ++j) {
        AssocSet& set = sets_[static_cast<size_t>(order[j])];
        if (set.fail_size == set.remaining) continue;  // known infeasible
        MatchAttempt attempt = TryMatch(set);
        if (!attempt.feasible) {
          set.fail_size = set.remaining;
          continue;
        }
        if (!best.feasible || attempt.cost < best_cost) {
          best = std::move(attempt);
          best_cost = best.cost;
        }
        if (options_.backend == GreedyOptions::MatchingBackend::kHopcroftKarp) {
          break;  // no cost tie-breaking: first feasible wins
        }
      }
      if (best.feasible) {
        Commit(best, &out);
        ++iterations_;
        committed = true;
        break;
      }
      i = j;
    }
    if (!committed) break;
  }
  return out;
}

}  // namespace

GreedyAllocator::GreedyAllocator(GreedyOptions options) : options_(options) {}

core::Assignment GreedyAllocator::Allocate(const core::BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  // Force candidate construction before opening the span so candidate_build
  // traces as a sibling of matching, not a child.
  problem.Candidates();
  DASC_TRACE_SPAN("matching");
  GreedyRun run(problem, options_);
  core::Assignment assignment = run.Run();
  last_iterations_ = run.iterations();
  last_match_attempts_ = run.match_attempts();
  DASC_METRIC_COUNTER_ADD("greedy_iterations_total", last_iterations_);
  DASC_METRIC_COUNTER_ADD("greedy_match_attempts_total", last_match_attempts_);
  return assignment;
}

}  // namespace dasc::algo
