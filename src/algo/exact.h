// Exact solver: the paper's DFS Algorithm (Section V-B) with an optional
// admissible branch-and-bound prune and a wall-clock budget.
//
// Each level of the search tree is a worker; its children are the feasible
// tasks the worker can take (plus "skip"). The objective of a leaf is the
// valid (dependency-closed) pair count. Exponential — only for small-scale
// ground truth (Table VI).
#ifndef DASC_ALGO_EXACT_H_
#define DASC_ALGO_EXACT_H_

#include "core/allocator.h"

namespace dasc::algo {

struct ExactOptions {
  // Prune branches whose optimistic bound (pairs so far + remaining workers)
  // cannot beat the incumbent. Keeping the paper's plain exhaustive DFS is
  // possible with prune = false.
  bool prune = true;
  // Seed the incumbent with a DASC_Greedy solution before searching. Only
  // affects speed (and guarantees DFS >= Greedy even under a time limit).
  bool warm_start = true;
  // Stop after this many seconds and return the incumbent (0 = no limit).
  double time_limit_seconds = 0.0;
};

class ExactAllocator : public core::Allocator {
 public:
  explicit ExactAllocator(ExactOptions options = {});

  std::string_view name() const override { return "DFS"; }
  core::Assignment Allocate(const core::BatchProblem& problem) override;

  // True iff the last Allocate() exhausted the search space (i.e., the result
  // is provably optimal rather than a time-limited incumbent).
  bool last_run_complete() const { return last_run_complete_; }
  // Nodes expanded by the last Allocate().
  int64_t last_nodes() const { return last_nodes_; }

 private:
  ExactOptions options_;
  bool last_run_complete_ = false;
  int64_t last_nodes_ = 0;
};

}  // namespace dasc::algo

#endif  // DASC_ALGO_EXACT_H_
