#include "algo/exact.h"

#include <algorithm>
#include <vector>

#include "algo/greedy.h"
#include "util/timer.h"

namespace dasc::algo {

namespace {

using core::BatchProblem;
using core::TaskId;

class DfsSearch {
 public:
  DfsSearch(const BatchProblem& problem, const ExactOptions& options)
      : problem_(problem),
        instance_(*problem.instance),
        options_(options),
        candidates_(problem.Candidates()) {}

  // Seeds the branch-and-bound incumbent (e.g., from DASC_Greedy).
  void SeedIncumbent(core::Assignment assignment) {
    const int score = core::ValidScore(problem_, assignment);
    if (score > best_seed_score_) {
      best_seed_score_ = score;
      seed_ = std::move(assignment);
    }
  }

  core::Assignment Run(bool* complete, int64_t* nodes) {
    // Order workers by ascending branching factor: cheap fail-first.
    worker_order_.resize(problem_.workers.size());
    for (size_t i = 0; i < worker_order_.size(); ++i) {
      worker_order_[i] = static_cast<int>(i);
    }
    std::sort(worker_order_.begin(), worker_order_.end(), [&](int a, int b) {
      return candidates_.worker_tasks[static_cast<size_t>(a)].size() <
             candidates_.worker_tasks[static_cast<size_t>(b)].size();
    });
    taken_.assign(static_cast<size_t>(instance_.num_tasks()), 0);
    best_score_ = -1;
    if (best_seed_score_ >= 0) {
      best_score_ = best_seed_score_;
      best_ = ValidPairs(problem_, seed_);
    }
    aborted_ = false;
    nodes_ = 0;
    Descend(0);
    *complete = !aborted_;
    *nodes = nodes_;
    return best_;
  }

 private:
  // Valid (dependency-closed) score of the current partial assignment.
  int CurrentValidScore() const {
    core::Assignment assignment;
    for (const auto& [wi, t] : stack_) {
      assignment.Add(problem_.workers[static_cast<size_t>(wi)].id, t);
    }
    return core::ValidScore(problem_, assignment);
  }

  void RecordLeaf() {
    const int score = CurrentValidScore();
    if (score > best_score_) {
      best_score_ = score;
      core::Assignment assignment;
      for (const auto& [wi, t] : stack_) {
        assignment.Add(problem_.workers[static_cast<size_t>(wi)].id, t);
      }
      best_ = ValidPairs(problem_, assignment);
    }
  }

  void Descend(size_t level) {
    if (aborted_) return;
    if ((++nodes_ & 1023) == 0 && options_.time_limit_seconds > 0.0 &&
        timer_.ElapsedSeconds() > options_.time_limit_seconds) {
      aborted_ = true;
      return;
    }
    if (level == worker_order_.size()) {
      RecordLeaf();
      return;
    }
    if (options_.prune) {
      // Optimistic bound: every remaining worker adds at most one pair.
      const int bound = static_cast<int>(stack_.size()) +
                        static_cast<int>(worker_order_.size() - level);
      if (bound <= best_score_) return;
    }
    const int wi = worker_order_[level];
    for (TaskId t : candidates_.worker_tasks[static_cast<size_t>(wi)]) {
      if (taken_[static_cast<size_t>(t)]) continue;
      taken_[static_cast<size_t>(t)] = 1;
      stack_.emplace_back(wi, t);
      Descend(level + 1);
      stack_.pop_back();
      taken_[static_cast<size_t>(t)] = 0;
      if (aborted_) return;
    }
    // "Skip" branch: the worker takes no task.
    Descend(level + 1);
  }

  const BatchProblem& problem_;
  const core::Instance& instance_;
  ExactOptions options_;
  const core::CandidateSets& candidates_;

  std::vector<int> worker_order_;
  core::Assignment seed_;
  int best_seed_score_ = -1;
  std::vector<uint8_t> taken_;
  std::vector<std::pair<int, TaskId>> stack_;  // (worker index, task)
  core::Assignment best_;
  int best_score_ = -1;
  bool aborted_ = false;
  int64_t nodes_ = 0;
  util::WallTimer timer_;
};

}  // namespace

ExactAllocator::ExactAllocator(ExactOptions options) : options_(options) {}

core::Assignment ExactAllocator::Allocate(const core::BatchProblem& problem) {
  DfsSearch search(problem, options_);
  if (options_.warm_start) {
    GreedyAllocator greedy;
    search.SeedIncumbent(greedy.Allocate(problem));
  }
  return search.Run(&last_run_complete_, &last_nodes_);
}

}  // namespace dasc::algo
