#include "algo/local_search.h"

#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace dasc::algo {

namespace {

using core::BatchProblem;
using core::Instance;
using core::TaskId;

// Incremental valid-score bookkeeping for one-worker-per-task assignments:
// count (0/1 occupancy), unmet closure-dependency counters, and marginal
// add/remove deltas, mirroring the game allocator's state machine.
class MoveState {
 public:
  explicit MoveState(const BatchProblem& problem)
      : problem_(problem), instance_(*problem.instance) {
    const size_t m = static_cast<size_t>(instance_.num_tasks());
    occupied_.assign(m, 0);
    unmet_.assign(m, 0);
    open_.assign(m, 0);
    for (TaskId t : problem.open_tasks) open_[static_cast<size_t>(t)] = 1;
    for (TaskId t = 0; t < instance_.num_tasks(); ++t) {
      int unmet = 0;
      for (TaskId f : instance_.DepClosure(t)) {
        if (!DepSatisfied(f)) ++unmet;
      }
      unmet_[static_cast<size_t>(t)] = unmet;
    }
  }

  bool occupied(TaskId t) const { return occupied_[static_cast<size_t>(t)] != 0; }

  void Add(TaskId t) {
    DASC_CHECK(!occupied(t));
    occupied_[static_cast<size_t>(t)] = 1;
    if (CountsForDeps(t)) {
      for (TaskId d : instance_.Dependents(t)) --unmet_[static_cast<size_t>(d)];
    }
  }

  void Remove(TaskId t) {
    DASC_CHECK(occupied(t));
    occupied_[static_cast<size_t>(t)] = 0;
    if (CountsForDeps(t)) {
      for (TaskId d : instance_.Dependents(t)) ++unmet_[static_cast<size_t>(d)];
    }
  }

  // Valid pairs gained by occupying free task t: itself (if its closure is
  // satisfied) plus occupied dependents for which t is the last hole.
  int AddGain(TaskId t) const {
    DASC_CHECK(!occupied(t));
    int gain = unmet_[static_cast<size_t>(t)] == 0 ? 1 : 0;
    if (problem_.in_batch_dependency_credit) {
      for (TaskId d : instance_.Dependents(t)) {
        if (open_[static_cast<size_t>(d)] && occupied(d) &&
            unmet_[static_cast<size_t>(d)] == 1) {
          ++gain;
        }
      }
    }
    return gain;
  }

  // Valid pairs lost by vacating occupied task t (symmetric to AddGain).
  int RemoveLoss(TaskId t) const {
    DASC_CHECK(occupied(t));
    int loss = unmet_[static_cast<size_t>(t)] == 0 ? 1 : 0;
    if (problem_.in_batch_dependency_credit) {
      for (TaskId d : instance_.Dependents(t)) {
        if (open_[static_cast<size_t>(d)] && occupied(d) &&
            unmet_[static_cast<size_t>(d)] == 0) {
          ++loss;
        }
      }
    }
    return loss;
  }

 private:
  bool DepSatisfied(TaskId f) const {
    if (problem_.TaskAssignedBefore(f)) return true;
    return problem_.in_batch_dependency_credit &&
           occupied_[static_cast<size_t>(f)] != 0;
  }
  bool CountsForDeps(TaskId t) const {
    return problem_.in_batch_dependency_credit &&
           !problem_.TaskAssignedBefore(t);
  }

  const BatchProblem& problem_;
  const Instance& instance_;
  std::vector<uint8_t> occupied_;
  std::vector<int> unmet_;
  std::vector<uint8_t> open_;
};

}  // namespace

LocalSearchStats ImproveAssignment(const core::BatchProblem& problem,
                                   const LocalSearchOptions& options,
                                   core::Assignment* assignment) {
  DASC_CHECK(problem.instance != nullptr);
  DASC_CHECK(assignment != nullptr);
  LocalSearchStats stats;
  const Instance& instance = *problem.instance;
  const auto& candidates = problem.Candidates();

  // Worker-index <-> task maps from the assignment.
  std::unordered_map<core::WorkerId, int> index_of;
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    index_of[problem.workers[i].id] = static_cast<int>(i);
  }
  std::vector<TaskId> choice(problem.workers.size(), core::kInvalidId);
  MoveState state(problem);
  for (const auto& [w, t] : assignment->pairs()) {
    auto it = index_of.find(w);
    DASC_CHECK(it != index_of.end()) << "assignment references foreign worker";
    DASC_CHECK(choice[static_cast<size_t>(it->second)] == core::kInvalidId)
        << "worker assigned twice";
    choice[static_cast<size_t>(it->second)] = t;
    state.Add(t);
  }

  // --- Relocation passes: strict valid-score improvements. ---
  for (int pass = 0; pass < options.max_relocate_passes; ++pass) {
    bool improved = false;
    for (size_t wi = 0; wi < problem.workers.size(); ++wi) {
      const TaskId current = choice[wi];
      const int loss = current == core::kInvalidId
                           ? 0
                           : state.RemoveLoss(current);
      if (current != core::kInvalidId) state.Remove(current);
      TaskId best = current;
      int best_delta = 0;
      for (TaskId t : candidates.worker_tasks[wi]) {
        if (t == current || state.occupied(t)) continue;
        const int delta = state.AddGain(t) - loss;
        if (delta > best_delta) {
          best_delta = delta;
          best = t;
        }
      }
      if (best != current) {
        state.Add(best);
        choice[wi] = best;
        ++stats.relocations;
        stats.score_gain += best_delta;
        improved = true;
      } else if (current != core::kInvalidId) {
        state.Add(current);
      }
    }
    if (!improved) break;
  }

  // --- Swap passes: score-neutral travel-cost polish. ---
  for (int pass = 0; pass < options.max_swap_passes; ++pass) {
    bool improved = false;
    for (size_t a = 0; a < problem.workers.size(); ++a) {
      if (choice[a] == core::kInvalidId) continue;
      for (size_t b = a + 1; b < problem.workers.size(); ++b) {
        if (choice[b] == core::kInvalidId) continue;
        const TaskId ta = choice[a];
        const TaskId tb = choice[b];
        // Both cross-assignments must be feasible.
        if (!core::CanServe(instance, problem.workers[a], tb, problem.now,
                            problem.params) ||
            !core::CanServe(instance, problem.workers[b], ta, problem.now,
                            problem.params)) {
          continue;
        }
        auto travel = [&](size_t wi, TaskId t) {
          const auto& ws = problem.workers[wi];
          return core::ServeDistance(instance, ws, t, problem.params) /
                 instance.worker(ws.id).velocity;
        };
        const double before = travel(a, ta) + travel(b, tb);
        const double after = travel(a, tb) + travel(b, ta);
        if (after + 1e-12 < before) {
          choice[a] = tb;
          choice[b] = ta;
          ++stats.swaps;
          stats.travel_saved += before - after;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  core::Assignment result;
  for (size_t wi = 0; wi < problem.workers.size(); ++wi) {
    if (choice[wi] != core::kInvalidId) {
      result.Add(problem.workers[wi].id, choice[wi]);
    }
  }
  *assignment = std::move(result);
  return stats;
}

LocalSearchAllocator::LocalSearchAllocator(
    std::unique_ptr<core::Allocator> inner, LocalSearchOptions options)
    : inner_(std::move(inner)), options_(options) {
  DASC_CHECK(inner_ != nullptr);
  name_ = std::string(inner_->name()) + "+LS";
}

core::Assignment LocalSearchAllocator::Allocate(
    const core::BatchProblem& problem) {
  core::Assignment assignment = inner_->Allocate(problem);
  last_stats_ = ImproveAssignment(problem, options_, &assignment);
  return assignment;
}

}  // namespace dasc::algo
