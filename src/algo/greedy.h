// DASC_Greedy (paper Algorithm 1).
//
// Combines each task with its unmet transitive dependencies into an
// *associative task set* and iteratively commits the largest set that a
// group of distinct feasible workers can fully serve, re-shrinking the
// remaining sets after every commit. Achieves a (1 - 1/e) approximation of
// the optimal batch assignment (paper Theorem III.2).
#ifndef DASC_ALGO_GREEDY_H_
#define DASC_ALGO_GREEDY_H_

#include <string>

#include "core/allocator.h"

namespace dasc::algo {

struct GreedyOptions {
  enum class MatchingBackend {
    // Min-travel-cost perfect matching (the paper's Hungarian step); among
    // equal-size associative sets prefers the cheapest one.
    kHungarian,
    // Feasibility-only maximum matching; faster, ignores travel cost ties.
    kHopcroftKarp,
    // Bertsekas auction: near-min-cost (within rows·epsilon) matching.
    kAuction,
  };
  MatchingBackend backend = MatchingBackend::kHungarian;
  // Bidding increment for the kAuction backend.
  double auction_epsilon = 1e-3;
};

class GreedyAllocator : public core::Allocator {
 public:
  explicit GreedyAllocator(GreedyOptions options = {});

  std::string_view name() const override {
    switch (options_.backend) {
      case GreedyOptions::MatchingBackend::kHungarian:
        return "Greedy";
      case GreedyOptions::MatchingBackend::kHopcroftKarp:
        return "Greedy-HK";
      case GreedyOptions::MatchingBackend::kAuction:
        return "Greedy-Auction";
    }
    return "Greedy";
  }
  core::Assignment Allocate(const core::BatchProblem& problem) override;

  // Commit iterations of the last Allocate() call. Lemma III.1 bounds this
  // by min(n_b, m_b); asserted in tests.
  int last_iterations() const { return last_iterations_; }
  // Matching attempts (Hungarian/HK/auction solves) of the last call.
  int64_t last_match_attempts() const { return last_match_attempts_; }

 private:
  GreedyOptions options_;
  int last_iterations_ = 0;
  int64_t last_match_attempts_ = 0;
};

}  // namespace dasc::algo

#endif  // DASC_ALGO_GREEDY_H_
