// DASC_Greedy (paper Algorithm 1).
//
// Combines each task with its unmet transitive dependencies into an
// *associative task set* and iteratively commits the largest set that a
// group of distinct feasible workers can fully serve, re-shrinking the
// remaining sets after every commit. Achieves a (1 - 1/e) approximation of
// the optimal batch assignment (paper Theorem III.2).
//
// The implementation is an incremental matching kernel (DESIGN.md §13): all
// solves run over the per-batch CSR candidate-edge layout
// (core::CandidateEdges), each associative set's last matching is cached and
// reused verbatim while its solve inputs are provably unchanged, and solves
// persist across batches through an allocator-owned warm-start store. Every
// default knob is exactness-preserving — the committed assignment is
// bit-identical to the historical solve-everything-every-iteration
// implementation (and to any thread count); tests and a dasc_stress oracle
// enforce that equivalence.
#ifndef DASC_ALGO_GREEDY_H_
#define DASC_ALGO_GREEDY_H_

#include <memory>
#include <string>

#include "core/allocator.h"

namespace dasc::algo {

struct GreedyOptions {
  enum class MatchingBackend {
    // Min-travel-cost perfect matching (the paper's Hungarian step); among
    // equal-size associative sets prefers the cheapest one.
    kHungarian,
    // Feasibility-only maximum matching; faster, ignores travel cost ties.
    kHopcroftKarp,
    // Bertsekas auction: near-min-cost (within rows·epsilon) matching.
    kAuction,
  };
  MatchingBackend backend = MatchingBackend::kHungarian;
  // Bidding increment for the kAuction backend.
  double auction_epsilon = 1e-3;

  // --- Incremental-kernel controls (DESIGN.md §13). ---
  // Per-batch attempt cache: a set's last matching is reused while no member
  // got assigned and no worker in its candidate union was consumed — under
  // those conditions the solve inputs are unchanged, so reuse is bitwise
  // identical to re-solving. Off = re-solve feasible sets on every scan (the
  // historical behavior; known-infeasible skipping is kept either way, it
  // predates this cache as `fail_size`).
  bool incremental_cache = true;
  // Cross-batch warm start: the allocator persists each root's latest solve
  // (its exact filtered rows plus the result) and the next batch reuses it
  // only when it presents bit-identical rows, falling back to a cold solve
  // on any delta. Exact by construction; `matching_warm_start_hits_total` /
  // `matching_cold_solves_total` count the split.
  bool warm_start = true;
  // Delta repair: when a cached feasible matching is invalidated by a
  // consumed worker or an assigned member, keep its dual certificate and
  // re-augment only the broken rows instead of cold-solving. Guaranteed to
  // match the cold solve's cost and size (optimality is preserved — see
  // DESIGN.md §13) but may pick a different equal-cost matching under ties,
  // so it is opt-in.
  bool delta_repair = false;
  // When a size class holds at least this many sets, fan fresh solves out
  // over util::ParallelFor (Hungarian backend; solves are independent,
  // selection stays sequential, output is bit-identical at every thread
  // count). <= 0 disables parallel evaluation.
  int parallel_solve_threshold = 32;
};

// Cross-batch warm-start store owned by a GreedyAllocator (greedy.cc).
struct GreedyWarmState;

class GreedyAllocator : public core::Allocator {
 public:
  explicit GreedyAllocator(GreedyOptions options = {});
  ~GreedyAllocator() override;

  std::string_view name() const override {
    switch (options_.backend) {
      case GreedyOptions::MatchingBackend::kHungarian:
        return "Greedy";
      case GreedyOptions::MatchingBackend::kHopcroftKarp:
        return "Greedy-HK";
      case GreedyOptions::MatchingBackend::kAuction:
        return "Greedy-Auction";
    }
    return "Greedy";
  }
  core::Assignment Allocate(const core::BatchProblem& problem) override;

  // Commit iterations of the last Allocate() call. Lemma III.1 bounds this
  // by min(n_b, m_b); asserted in tests.
  int last_iterations() const { return last_iterations_; }
  // Matching evaluations (fresh solves, cache reuses, warm-start hits, and
  // delta repairs) of the last call.
  int64_t last_match_attempts() const { return last_match_attempts_; }
  // Reuse split of the last call: evaluations answered from the attempt
  // cache / warm store / delta repair vs full solves.
  int64_t last_warm_hits() const { return last_warm_hits_; }
  int64_t last_cold_solves() const { return last_cold_solves_; }

 private:
  GreedyOptions options_;
  int last_iterations_ = 0;
  int64_t last_match_attempts_ = 0;
  int64_t last_warm_hits_ = 0;
  int64_t last_cold_solves_ = 0;
  std::unique_ptr<GreedyWarmState> warm_;
};

}  // namespace dasc::algo

#endif  // DASC_ALGO_GREEDY_H_
