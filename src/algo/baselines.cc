#include "algo/baselines.h"

#include <limits>
#include <vector>

#include "util/logging.h"

namespace dasc::algo {

core::Assignment ClosestAllocator::Allocate(
    const core::BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  const auto& candidates = problem.Candidates();
  const core::Instance& instance = *problem.instance;

  std::vector<uint8_t> taken(static_cast<size_t>(instance.num_tasks()), 0);
  core::Assignment assignment;
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    const core::WorkerState& state = problem.workers[i];
    core::TaskId best = core::kInvalidId;
    double best_dist = std::numeric_limits<double>::infinity();
    for (core::TaskId t : candidates.worker_tasks[i]) {
      if (taken[static_cast<size_t>(t)]) continue;
      const double dist =
          core::ServeDistance(instance, state, t, problem.params);
      if (dist < best_dist) {
        best_dist = dist;
        best = t;
      }
    }
    if (best != core::kInvalidId) {
      taken[static_cast<size_t>(best)] = 1;
      assignment.Add(state.id, best);
    }
  }
  return assignment;
}

core::Assignment RandomAllocator::Allocate(const core::BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  const auto& candidates = problem.Candidates();
  const core::Instance& instance = *problem.instance;

  std::vector<uint8_t> taken(static_cast<size_t>(instance.num_tasks()), 0);
  core::Assignment assignment;
  std::vector<core::TaskId> free_tasks;
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    free_tasks.clear();
    for (core::TaskId t : candidates.worker_tasks[i]) {
      if (!taken[static_cast<size_t>(t)]) free_tasks.push_back(t);
    }
    if (free_tasks.empty()) continue;
    const core::TaskId pick = free_tasks[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(free_tasks.size()) - 1))];
    taken[static_cast<size_t>(pick)] = 1;
    assignment.Add(problem.workers[i].id, pick);
  }
  return assignment;
}

}  // namespace dasc::algo
