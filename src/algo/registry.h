// Name-based allocator factory used by benches, examples, and tests.
#ifndef DASC_ALGO_REGISTRY_H_
#define DASC_ALGO_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "util/status.h"

namespace dasc::algo {

// Recognized names (case-sensitive):
//   "greedy"   DASC_Greedy (Hungarian backend)
//   "greedy-hk" DASC_Greedy (Hopcroft-Karp backend)
//   "greedy-auction" DASC_Greedy (Bertsekas auction backend)
//   "greedy-ls" DASC_Greedy followed by local-search improvement
//   "game"     DASC_Game, strict termination
//   "game5"    DASC_Game, 5% utility-updating-ratio threshold
//   "gg"       DASC_Game initialized by DASC_Greedy (G-G)
//   "closest"  nearest-feasible-task baseline
//   "random"   random-feasible-task baseline
//   "maxmatch" maximum-bipartite-matching baseline (dependency-oblivious)
//   "urgency"  dependency-aware list-scheduling heuristic
//   "dfs"      exact DFS (small instances only; 60 s default budget)
util::Result<std::unique_ptr<core::Allocator>> CreateAllocator(
    const std::string& name, uint64_t seed = 42);

// Splits a comma-separated list ("greedy,game5,closest") into allocators.
util::Result<std::vector<std::unique_ptr<core::Allocator>>> CreateAllocators(
    const std::string& names, uint64_t seed = 42);

// All recognized names, for help text.
std::vector<std::string> KnownAllocatorNames();

}  // namespace dasc::algo

#endif  // DASC_ALGO_REGISTRY_H_
