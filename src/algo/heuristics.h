// Additional allocation policies beyond the paper's four:
//  * MaxMatchingAllocator — the strongest dependency-oblivious policy: a
//    maximum bipartite matching over all feasible pairs (upper envelope of
//    Closest/Random); shows that ignoring dependencies loses even with
//    per-batch-optimal pairing.
//  * UrgencyAllocator — cheap dependency-aware list scheduling: repeatedly
//    assigns the ready task with the most open dependents (ties: earliest
//    expiry) to its nearest available feasible worker. A middle ground
//    between the baselines and DASC_Greedy.
#ifndef DASC_ALGO_HEURISTICS_H_
#define DASC_ALGO_HEURISTICS_H_

#include "core/allocator.h"

namespace dasc::algo {

class MaxMatchingAllocator : public core::Allocator {
 public:
  std::string_view name() const override { return "MaxMatch"; }
  core::Assignment Allocate(const core::BatchProblem& problem) override;
};

class UrgencyAllocator : public core::Allocator {
 public:
  std::string_view name() const override { return "Urgency"; }
  core::Assignment Allocate(const core::BatchProblem& problem) override;
};

}  // namespace dasc::algo

#endif  // DASC_ALGO_HEURISTICS_H_
