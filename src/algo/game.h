// DASC_Game (paper Algorithm 3): best-response dynamics on the exact
// potential game of Section IV.
//
// Every worker is a player whose strategies are the feasible open tasks; the
// utility (Eq. 3) splits a task's unit value into a self share and shares
// forwarded to its dependencies, each diluted by the number of workers
// contending for the same task. Because the game is an exact potential game
// (Theorem IV.1), sequential best response converges to a pure Nash
// equilibrium; a threshold on the fraction of strategy changes per round
// ("utility updating ratio") trades score for running time (Fig. 2).
#ifndef DASC_ALGO_GAME_H_
#define DASC_ALGO_GAME_H_

#include <memory>
#include <string>
#include <vector>

#include "algo/greedy.h"
#include "core/allocator.h"
#include "util/rng.h"

namespace dasc::algo {

struct GameOptions {
  // How a worker's utility is computed during best response:
  //  * kMarginal (default): U_w(s) is the worker's marginal contribution to
  //    the batch objective — the number of valid pairs its choice creates
  //    (s itself if its closure is satisfied, plus every contended dependent
  //    that s unblocks); joining an already-contended task contributes 0.
  //    The paper observes Sum(M) = Σ_w U_w; with marginal utilities Φ =
  //    Sum(M) is an *exact* potential, so best response hill-climbs the true
  //    objective and G-G can never fall below its greedy seed. This variant
  //    reproduces the paper's reported ordering (G-G ≥ Game ≥ Greedy).
  //  * kPaperEq3: the literal Eq. 3 expected-share utility. Empirically its
  //    dynamics pile workers onto share-rich tasks and abandon chain
  //    interiors (a dependency-free task pays 1/nw vs (α-1)/(α·nw) for a
  //    chain task), collapsing the coordinated chains DASC_Greedy builds —
  //    see the ablation bench and EXPERIMENTS.md.
  //  * kUniformSelf: Eq. 3 with the dependency-free premium removed (every
  //    task pays the same (α-1)/α self-share).
  enum class UtilityVariant { kMarginal, kUniformSelf, kPaperEq3 };
  UtilityVariant utility_variant = UtilityVariant::kMarginal;

  // Normalization parameter α of Eq. 3; must be > 1.
  double alpha = 2.0;
  // Terminate a batch's best-response loop when the fraction of workers that
  // changed strategy in a round is <= threshold. 0 = strict Nash equilibrium.
  double threshold = 0.0;
  // Hard cap on rounds (safety valve; the potential argument guarantees
  // termination — Lemma IV.1 bounds rounds by d·min(n_b, m_b) — but the tail
  // can be long; convergence is typically < 20 rounds). 0 = none.
  int max_rounds = 200;
  // G-G heuristic: initialize strategies from a DASC_Greedy run instead of
  // uniformly at random.
  bool greedy_init = false;
  GreedyOptions greedy_options;
  uint64_t seed = 42;
  // Table label; defaults to "Game", "Game-5%", or "G-G" based on options.
  std::string display_name;
};

class GameAllocator : public core::Allocator {
 public:
  explicit GameAllocator(GameOptions options = {});

  std::string_view name() const override { return name_; }
  core::Assignment Allocate(const core::BatchProblem& problem) override;

  // Rounds used by the most recent Allocate() call (observability/tests).
  int last_rounds() const { return last_rounds_; }

 private:
  GameOptions options_;
  std::string name_;
  util::Rng rng_;
  int last_rounds_ = 0;
  // G-G's greedy seeder, persisted across batches so its cross-batch
  // warm-start store survives (greedy.h); created on first use.
  std::unique_ptr<GreedyAllocator> seed_allocator_;
};

// Σ_w U_w(s_w, \bar{s}_w) under an explicit strategy profile (worker index
// into problem.workers -> chosen open task, or kInvalidId for idle).
// At a valid one-worker-per-task profile this equals the number of valid
// pairs (the paper's Sum(M) = Σ U_w observation); exposed for tests and the
// "utility updating ratio" experiment.
double ProfileUtilitySum(const core::BatchProblem& problem,
                         const std::vector<core::TaskId>& choice,
                         double alpha);

// U_w(s, \bar{s}_w) for worker index `wi` deviating to `s` while everyone
// else keeps `choice` (worker wi's own entry is ignored). Literal Eq. 3.
// Exposed for the equilibrium-theory tests (PoS/PoA of Theorem IV.2).
double ProfileWorkerUtility(const core::BatchProblem& problem,
                            const std::vector<core::TaskId>& choice,
                            size_t wi, core::TaskId s, double alpha);

}  // namespace dasc::algo

#endif  // DASC_ALGO_GAME_H_
