// The paper's two dependency-oblivious baselines (Section V-B).
#ifndef DASC_ALGO_BASELINES_H_
#define DASC_ALGO_BASELINES_H_

#include "core/allocator.h"
#include "util/rng.h"

namespace dasc::algo {

// "Closest": every worker (in id order) grabs the nearest feasible task that
// is still unassigned, ignoring dependencies. Pairs whose dependencies end up
// unmet are invalid and do not score.
class ClosestAllocator : public core::Allocator {
 public:
  std::string_view name() const override { return "Closest"; }
  core::Assignment Allocate(const core::BatchProblem& problem) override;
};

// "Random": every worker grabs a uniformly random feasible unassigned task,
// ignoring dependencies.
class RandomAllocator : public core::Allocator {
 public:
  explicit RandomAllocator(uint64_t seed = 42) : rng_(seed) {}

  std::string_view name() const override { return "Random"; }
  core::Assignment Allocate(const core::BatchProblem& problem) override;

 private:
  util::Rng rng_;
};

}  // namespace dasc::algo

#endif  // DASC_ALGO_BASELINES_H_
