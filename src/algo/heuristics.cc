#include "algo/heuristics.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "matching/hopcroft_karp.h"
#include "util/logging.h"

namespace dasc::algo {

core::Assignment MaxMatchingAllocator::Allocate(
    const core::BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  const auto& candidates = problem.Candidates();

  // Dense-index the open tasks for the right side of the matching.
  std::unordered_map<core::TaskId, int> column_of;
  for (size_t k = 0; k < problem.open_tasks.size(); ++k) {
    column_of[problem.open_tasks[k]] = static_cast<int>(k);
  }
  matching::HopcroftKarp hk(static_cast<int>(problem.workers.size()),
                            static_cast<int>(problem.open_tasks.size()));
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    for (core::TaskId t : candidates.worker_tasks[i]) {
      hk.AddEdge(static_cast<int>(i), column_of.at(t));
    }
  }
  hk.MaxMatching();

  core::Assignment assignment;
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    const int column = hk.MatchOfLeft(static_cast<int>(i));
    if (column >= 0) {
      assignment.Add(problem.workers[i].id,
                     problem.open_tasks[static_cast<size_t>(column)]);
    }
  }
  return assignment;
}

core::Assignment UrgencyAllocator::Allocate(
    const core::BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  const core::Instance& instance = *problem.instance;
  const auto& candidates = problem.Candidates();

  std::vector<uint8_t> open(static_cast<size_t>(instance.num_tasks()), 0);
  for (core::TaskId t : problem.open_tasks) open[static_cast<size_t>(t)] = 1;

  // unmet[t]: closure dependencies not yet satisfied (credited or picked this
  // batch). Tasks with a dependency that is neither credited nor open can
  // never become ready.
  std::vector<int> unmet(static_cast<size_t>(instance.num_tasks()), 0);
  std::vector<uint8_t> dead(static_cast<size_t>(instance.num_tasks()), 0);
  for (core::TaskId t : problem.open_tasks) {
    for (core::TaskId f : instance.DepClosure(t)) {
      if (problem.TaskAssignedBefore(f)) continue;
      if (!open[static_cast<size_t>(f)] ||
          !problem.in_batch_dependency_credit) {
        dead[static_cast<size_t>(t)] = 1;
      }
      ++unmet[static_cast<size_t>(t)];
    }
  }

  // Priority: more open dependents first (unlocking potential), then earlier
  // expiry (urgency), then id for determinism.
  auto priority = [&](core::TaskId t) {
    int open_dependents = 0;
    for (core::TaskId d : instance.Dependents(t)) {
      if (open[static_cast<size_t>(d)]) ++open_dependents;
    }
    return std::tuple<int, double, core::TaskId>(
        -open_dependents, instance.task(t).Expiry(), t);
  };

  std::vector<uint8_t> worker_used(problem.workers.size(), 0);
  std::vector<uint8_t> picked(static_cast<size_t>(instance.num_tasks()), 0);
  core::Assignment assignment;

  // Ready tasks, re-sorted whenever the pool changes. Pool sizes per batch
  // are modest, so a simple sorted scan is fine.
  std::vector<core::TaskId> ready;
  for (core::TaskId t : problem.open_tasks) {
    if (!dead[static_cast<size_t>(t)] && unmet[static_cast<size_t>(t)] == 0) {
      ready.push_back(t);
    }
  }

  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(),
              [&](core::TaskId a, core::TaskId b) {
                return priority(a) < priority(b);
              });
    bool progressed = false;
    std::vector<core::TaskId> next_ready;
    for (core::TaskId t : ready) {
      if (picked[static_cast<size_t>(t)]) continue;
      // Nearest available feasible worker.
      int best_worker = -1;
      double best_dist = std::numeric_limits<double>::infinity();
      for (int wi : candidates.task_workers[static_cast<size_t>(t)]) {
        if (worker_used[static_cast<size_t>(wi)]) continue;
        const double dist = core::ServeDistance(
            instance, problem.workers[static_cast<size_t>(wi)], t,
            problem.params);
        if (dist < best_dist) {
          best_dist = dist;
          best_worker = wi;
        }
      }
      if (best_worker < 0) {
        next_ready.push_back(t);  // retry if workers free up (they do not,
                                  // but keeps the loop structure uniform)
        continue;
      }
      worker_used[static_cast<size_t>(best_worker)] = 1;
      picked[static_cast<size_t>(t)] = 1;
      assignment.Add(problem.workers[static_cast<size_t>(best_worker)].id, t);
      progressed = true;
      // Unlock dependents.
      if (problem.in_batch_dependency_credit) {
        for (core::TaskId d : instance.Dependents(t)) {
          if (!open[static_cast<size_t>(d)] || dead[static_cast<size_t>(d)]) {
            continue;
          }
          if (--unmet[static_cast<size_t>(d)] == 0) {
            next_ready.push_back(d);
          }
        }
      }
    }
    if (!progressed) break;
    ready.swap(next_ready);
  }
  return assignment;
}

}  // namespace dasc::algo
