#include "algo/registry.h"

#include <sstream>

#include "algo/baselines.h"
#include "algo/exact.h"
#include "algo/game.h"
#include "algo/greedy.h"
#include "algo/heuristics.h"
#include "algo/local_search.h"

namespace dasc::algo {

util::Result<std::unique_ptr<core::Allocator>> CreateAllocator(
    const std::string& name, uint64_t seed) {
  if (name == "greedy") {
    return std::unique_ptr<core::Allocator>(new GreedyAllocator());
  }
  if (name == "greedy-hk") {
    GreedyOptions options;
    options.backend = GreedyOptions::MatchingBackend::kHopcroftKarp;
    return std::unique_ptr<core::Allocator>(new GreedyAllocator(options));
  }
  if (name == "greedy-auction") {
    GreedyOptions options;
    options.backend = GreedyOptions::MatchingBackend::kAuction;
    return std::unique_ptr<core::Allocator>(new GreedyAllocator(options));
  }
  if (name == "greedy-delta") {
    // Delta-repair variant: re-augments invalidated matchings from their
    // dual certificates instead of cold-solving. Same score/cost guarantees
    // as "greedy" (see GreedyOptions::delta_repair), possibly different
    // equal-cost matchings; in the registry for stress-sweep coverage.
    GreedyOptions options;
    options.delta_repair = true;
    return std::unique_ptr<core::Allocator>(new GreedyAllocator(options));
  }
  if (name == "greedy-ls") {
    return std::unique_ptr<core::Allocator>(new LocalSearchAllocator(
        std::unique_ptr<core::Allocator>(new GreedyAllocator())));
  }
  if (name == "game") {
    GameOptions options;
    options.seed = seed;
    return std::unique_ptr<core::Allocator>(new GameAllocator(options));
  }
  if (name == "game5") {
    GameOptions options;
    options.threshold = 0.05;
    options.seed = seed;
    return std::unique_ptr<core::Allocator>(new GameAllocator(options));
  }
  if (name == "gg") {
    GameOptions options;
    options.greedy_init = true;
    options.seed = seed;
    return std::unique_ptr<core::Allocator>(new GameAllocator(options));
  }
  if (name == "closest") {
    return std::unique_ptr<core::Allocator>(new ClosestAllocator());
  }
  if (name == "maxmatch") {
    return std::unique_ptr<core::Allocator>(new MaxMatchingAllocator());
  }
  if (name == "urgency") {
    return std::unique_ptr<core::Allocator>(new UrgencyAllocator());
  }
  if (name == "random") {
    return std::unique_ptr<core::Allocator>(new RandomAllocator(seed));
  }
  if (name == "dfs") {
    ExactOptions options;
    options.time_limit_seconds = 60.0;
    return std::unique_ptr<core::Allocator>(new ExactAllocator(options));
  }
  return util::Status::NotFound("unknown allocator: " + name);
}

util::Result<std::vector<std::unique_ptr<core::Allocator>>> CreateAllocators(
    const std::string& names, uint64_t seed) {
  std::vector<std::unique_ptr<core::Allocator>> allocators;
  std::stringstream stream(names);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    auto allocator = CreateAllocator(token, seed);
    if (!allocator.ok()) return allocator.status();
    allocators.push_back(std::move(*allocator));
  }
  return allocators;
}

std::vector<std::string> KnownAllocatorNames() {
  return {"greedy",  "greedy-hk", "greedy-auction", "greedy-delta",
          "greedy-ls", "game",    "game5",          "gg",
          "closest", "random",    "maxmatch",       "urgency",
          "dfs"};
}

}  // namespace dasc::algo
