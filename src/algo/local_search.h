// Local-search post-optimization of batch assignments.
//
// Two move families over a (worker -> task) assignment:
//  * relocate: move a worker to a free feasible task when that strictly
//    increases the valid (dependency-closed) score — evaluated with the same
//    incremental marginal-value counters as the game allocator;
//  * swap: exchange two workers' tasks when both directions are feasible and
//    total travel time strictly drops (score-neutral cost polish).
// Hill-climbs to a local optimum (or a pass budget). Wrapping any allocator
// with LocalSearchAllocator yields its "+LS" variant.
#ifndef DASC_ALGO_LOCAL_SEARCH_H_
#define DASC_ALGO_LOCAL_SEARCH_H_

#include <memory>
#include <string>

#include "core/allocator.h"

namespace dasc::algo {

struct LocalSearchOptions {
  // Full sweeps over all workers per batch; 0 disables relocation.
  int max_relocate_passes = 8;
  // Full sweeps of pairwise swaps; 0 disables the cost polish.
  int max_swap_passes = 2;
};

struct LocalSearchStats {
  int relocations = 0;
  int swaps = 0;
  int score_gain = 0;
  double travel_saved = 0.0;
};

// Improves `assignment` in place for the given batch; returns move stats.
// The input must satisfy the exclusive constraint (one task per worker and
// vice versa); pairs may be dependency-invalid (they are improvement fuel).
LocalSearchStats ImproveAssignment(const core::BatchProblem& problem,
                                   const LocalSearchOptions& options,
                                   core::Assignment* assignment);

// Decorator: runs `inner`, then local search.
class LocalSearchAllocator : public core::Allocator {
 public:
  LocalSearchAllocator(std::unique_ptr<core::Allocator> inner,
                       LocalSearchOptions options = {});

  std::string_view name() const override { return name_; }
  core::Assignment Allocate(const core::BatchProblem& problem) override;

  const LocalSearchStats& last_stats() const { return last_stats_; }

 private:
  std::unique_ptr<core::Allocator> inner_;
  LocalSearchOptions options_;
  std::string name_;
  LocalSearchStats last_stats_;
};

}  // namespace dasc::algo

#endif  // DASC_ALGO_LOCAL_SEARCH_H_
