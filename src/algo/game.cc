#include "algo/game.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/tracing.h"

namespace dasc::algo {

namespace {

using core::BatchProblem;
using core::Instance;
using core::TaskId;

constexpr TaskId kNoTask = core::kInvalidId;

// Incremental state of the strategy profile: per-task contender counts,
// assignment flags, and per-task counts of unmet (unassigned) closure
// dependencies, maintained under single add/remove operations.
class GameState {
 public:
  GameState(const BatchProblem& problem)
      : problem_(problem), instance_(*problem.instance) {
    const size_t m = static_cast<size_t>(instance_.num_tasks());
    count_.assign(m, 0);
    unmet_.assign(m, 0);
    open_.assign(m, 0);
    for (TaskId t : problem.open_tasks) open_[static_cast<size_t>(t)] = 1;
    for (TaskId t = 0; t < instance_.num_tasks(); ++t) {
      int unmet = 0;
      for (TaskId f : instance_.DepClosure(t)) {
        if (!Assigned(f)) ++unmet;
      }
      unmet_[static_cast<size_t>(t)] = unmet;
    }
  }

  // Whether task t counts as assigned for *dependency* purposes (a_t in
  // Eq. 3). In-batch contenders count only under the paper's default
  // in-batch dependency credit.
  bool Assigned(TaskId t) const {
    if (problem_.TaskAssignedBefore(t)) return true;
    return problem_.in_batch_dependency_credit &&
           count_[static_cast<size_t>(t)] > 0;
  }
  int count(TaskId t) const { return count_[static_cast<size_t>(t)]; }
  int unmet(TaskId t) const { return unmet_[static_cast<size_t>(t)]; }
  bool open(TaskId t) const { return open_[static_cast<size_t>(t)] != 0; }

  // Adds one contender to task t, updating dependents' unmet counters when
  // the assignment flag flips off->on.
  void Add(TaskId t) {
    const bool was = Assigned(t);
    ++count_[static_cast<size_t>(t)];
    if (!was && Assigned(t)) {
      for (TaskId d : instance_.Dependents(t)) {
        --unmet_[static_cast<size_t>(d)];
      }
    }
  }

  // Removes one contender from task t (inverse of Add).
  void Remove(TaskId t) {
    DASC_CHECK_GT(count_[static_cast<size_t>(t)], 0);
    const bool was = Assigned(t);
    --count_[static_cast<size_t>(t)];
    if (was && !Assigned(t)) {
      for (TaskId d : instance_.Dependents(t)) {
        ++unmet_[static_cast<size_t>(d)];
      }
    }
  }

  // U_w(s, \bar{s}_w) for a worker currently *not* counted anywhere choosing
  // strategy s (Eq. 3, its uniform-self variant, or the marginal-value
  // utility). α > 1.
  double Utility(TaskId s, double alpha,
                 GameOptions::UtilityVariant variant) const {
    if (variant == GameOptions::UtilityVariant::kMarginal) {
      return MarginalUtility(s);
    }
    const int nw = count_[static_cast<size_t>(s)] + 1;
    const auto& deps = instance_.DepClosure(s);
    double numerator;
    if (deps.empty()) {
      // Literal Eq. 3 pays a dependency-free task its full unit value; the
      // uniform variant charges the same (α-1)/α self-share as everything
      // else so chain membership carries no penalty.
      numerator = variant == GameOptions::UtilityVariant::kPaperEq3
                      ? 1.0
                      : (alpha - 1.0) / alpha;
    } else {
      numerator = (unmet_[static_cast<size_t>(s)] == 0)
                      ? (alpha - 1.0) / alpha
                      : 0.0;
    }
    // Shares forwarded from open dependents t with s ∈ D_t: counted when t is
    // contended and every task in D_t ∪ {t} is assigned treating s as
    // assigned (the evaluating worker would assign it). With in-batch credit
    // disabled, choosing s cannot satisfy anyone this batch: no shares flow.
    if (!problem_.in_batch_dependency_credit) {
      return numerator / static_cast<double>(nw);
    }
    const int s_unassigned_now = Assigned(s) ? 0 : 1;
    for (TaskId t : instance_.Dependents(s)) {
      if (!open(t)) continue;
      if (count_[static_cast<size_t>(t)] == 0) continue;  // a_t = 0
      if (unmet_[static_cast<size_t>(t)] != s_unassigned_now) continue;
      const double dep_size =
          static_cast<double>(instance_.DepClosure(t).size());
      numerator += 1.0 / (alpha * dep_size);
    }
    return numerator / static_cast<double>(nw);
  }

 private:
  // Marginal contribution of taking task s (the worker is currently removed
  // from the profile): the number of valid pairs the choice creates. Taking
  // a task someone else already contends creates nothing (rounding keeps a
  // single winner); a free task counts itself when its closure is satisfied
  // plus every contended dependent for which s is the last missing
  // dependency. Φ = Sum(M) is an exact potential for these utilities.
  double MarginalUtility(TaskId s) const {
    if (count_[static_cast<size_t>(s)] > 0) return 0.0;
    double value = unmet_[static_cast<size_t>(s)] == 0 ? 1.0 : 0.0;
    if (problem_.in_batch_dependency_credit) {
      for (TaskId t : instance_.Dependents(s)) {
        if (!open(t)) continue;
        if (count_[static_cast<size_t>(t)] == 0) continue;
        // unmet(t) == 1 while s is unassigned means s is the only hole.
        if (unmet_[static_cast<size_t>(t)] == 1) value += 1.0;
      }
    }
    return value;
  }

  const BatchProblem& problem_;
  const Instance& instance_;
  std::vector<int> count_;
  std::vector<int> unmet_;
  std::vector<uint8_t> open_;
};

}  // namespace

GameAllocator::GameAllocator(GameOptions options)
    : options_(options), rng_(options.seed) {
  DASC_CHECK_GT(options_.alpha, 1.0) << "Eq. 3 requires alpha > 1";
  DASC_CHECK_GE(options_.threshold, 0.0);
  if (!options_.display_name.empty()) {
    name_ = options_.display_name;
  } else if (options_.greedy_init) {
    name_ = "G-G";
  } else if (options_.threshold > 0.0) {
    name_ = "Game-" + std::to_string(static_cast<int>(
                          options_.threshold * 100.0 + 0.5)) + "%";
  } else {
    name_ = "Game";
  }
}

core::Assignment GameAllocator::Allocate(const core::BatchProblem& problem) {
  DASC_CHECK(problem.instance != nullptr);
  // Shared with the greedy seed below (G-G) via the BatchProblem cache: the
  // O(W x T) candidate build happens once per batch, not once per allocator.
  const auto& candidates = problem.Candidates();

  // Active players: workers with at least one feasible task.
  std::vector<int> players;
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    if (!candidates.worker_tasks[i].empty()) {
      players.push_back(static_cast<int>(i));
    }
  }
  last_rounds_ = 0;
  if (players.empty()) return core::Assignment();

  GameState state(problem);
  std::vector<TaskId> choice(problem.workers.size(), kNoTask);

  // --- Initialization (Algorithm 3 lines 1-2, or the G-G heuristic). ---
  if (options_.greedy_init) {
    if (seed_allocator_ == nullptr) {
      seed_allocator_ = std::make_unique<GreedyAllocator>(options_.greedy_options);
    }
    const core::Assignment seed_assignment = seed_allocator_->Allocate(problem);
    std::unordered_map<core::WorkerId, size_t> index_of;
    for (size_t i = 0; i < problem.workers.size(); ++i) {
      index_of[problem.workers[i].id] = i;
    }
    for (const auto& [w, t] : seed_assignment.pairs()) {
      choice[index_of.at(w)] = t;
    }
  }
  for (int wi : players) {
    if (choice[static_cast<size_t>(wi)] == kNoTask) {
      const auto& options = candidates.worker_tasks[static_cast<size_t>(wi)];
      choice[static_cast<size_t>(wi)] = options[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(options.size()) - 1))];
    }
    state.Add(choice[static_cast<size_t>(wi)]);
  }

  // --- Best-response rounds (Algorithm 3 lines 3-11). ---
  const double n_active = static_cast<double>(players.size());
  double potential_delta = 0.0;
  {
    DASC_TRACE_SPAN("best_response");
    DASC_FLIGHT_SPAN("best_response");
    while (true) {
      int changed = 0;
      for (int wi : players) {
        const TaskId current = choice[static_cast<size_t>(wi)];
        state.Remove(current);
        TaskId best = current;
        double best_utility =
            state.Utility(current, options_.alpha, options_.utility_variant);
        const double current_utility = best_utility;
        int best_contention = state.count(current) + 1;
        for (TaskId s : candidates.worker_tasks[static_cast<size_t>(wi)]) {
          if (s == current) continue;
          const double u =
              state.Utility(s, options_.alpha, options_.utility_variant);
          const int contention = state.count(s) + 1;
          // Strict utility improvement keeps the exact potential strictly
          // increasing; on exact ties, moving to a strictly less-contended
          // task strictly decreases Σ nw², so the lexicographic pair still
          // guarantees termination. Less contention means fewer workers lost
          // in the final one-winner-per-task rounding.
          if (u > best_utility + 1e-12 ||
              (u > best_utility - 1e-12 && contention < best_contention)) {
            best_utility = u;
            best = s;
            best_contention = contention;
          }
        }
        state.Add(best);
        if (best != current) {
          choice[static_cast<size_t>(wi)] = best;
          ++changed;
          // With marginal utilities Φ = Sum(M) is an exact potential, so
          // summing per-move utility gains measures exactly how much best
          // response improved on the initial profile this batch.
          potential_delta += best_utility - current_utility;
        }
      }
      ++last_rounds_;
      DASC_METRIC_COUNTER_ADD("game_moves_total", changed);
      DASC_METRIC_HISTOGRAM_OBSERVE("game_moves_per_round",
                                    static_cast<double>(changed));
      if (static_cast<double>(changed) / n_active <= options_.threshold) break;
      if (options_.max_rounds > 0 && last_rounds_ >= options_.max_rounds) {
        break;
      }
    }
  }
  DASC_METRIC_COUNTER_INC("game_batches_total");
  DASC_METRIC_HISTOGRAM_OBSERVE(
      "game_rounds", static_cast<double>(last_rounds_),
      (util::HistogramOptions{.start = 1.0, .growth = 2.0, .num_buckets = 10}));
  DASC_METRIC_GAUGE_SET("game_potential_delta", potential_delta);

  // --- Rounding (Algorithm 3 line 12 + the paper's cleanup note): one
  // random contender wins each contested task, then assignments whose
  // dependencies are not fully satisfied are removed (Algorithm 3's final
  // step), so the platform never dispatches them. ---
  std::unordered_map<TaskId, std::vector<int>> contenders;
  for (int wi : players) {
    contenders[choice[static_cast<size_t>(wi)]].push_back(wi);
  }
  core::Assignment assignment;
  // Deterministic task order for reproducibility.
  std::vector<TaskId> tasks;
  tasks.reserve(contenders.size());
  for (const auto& [t, _] : contenders) tasks.push_back(t);
  std::sort(tasks.begin(), tasks.end());
  for (TaskId t : tasks) {
    const auto& list = contenders[t];
    const int wi = list[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(list.size()) - 1))];
    assignment.Add(problem.workers[static_cast<size_t>(wi)].id, t);
  }
  return core::ValidPairs(problem, assignment);
}

double ProfileWorkerUtility(const core::BatchProblem& problem,
                            const std::vector<core::TaskId>& choice,
                            size_t wi, core::TaskId s, double alpha) {
  DASC_CHECK(problem.instance != nullptr);
  DASC_CHECK_LT(wi, choice.size());
  GameState state(problem);
  for (size_t i = 0; i < choice.size(); ++i) {
    if (i == wi) continue;  // the deviating worker is excluded
    if (choice[i] != kNoTask) state.Add(choice[i]);
  }
  return state.Utility(s, alpha, GameOptions::UtilityVariant::kPaperEq3);
}

double ProfileUtilitySum(const core::BatchProblem& problem,
                         const std::vector<core::TaskId>& choice,
                         double alpha) {
  DASC_CHECK(problem.instance != nullptr);
  DASC_CHECK_EQ(choice.size(), problem.workers.size());
  GameState state(problem);
  for (TaskId t : choice) {
    if (t != kNoTask) state.Add(t);
  }
  double total = 0.0;
  for (TaskId t : choice) {
    if (t == kNoTask) continue;
    state.Remove(t);
    total += state.Utility(t, alpha, GameOptions::UtilityVariant::kPaperEq3);
    state.Add(t);
  }
  return total;
}

}  // namespace dasc::algo
