// Sparse, incremental min-cost assignment kernel.
//
// DASC_Greedy solves thousands of tiny rectangular assignments per batch
// (one per associative-set evaluation), all drawn from the same per-batch
// candidate graph. The dense SolveAssignment path materializes a cost matrix
// and re-derives the column space for every solve; this kernel instead
// consumes CSR row views straight out of core's CandidateEdges layout,
// compacts the live column union with epoch-stamped scratch (O(edges), no
// hashing, no allocation after warm-up), and runs the identical
// shortest-augmenting-path Hungarian in the compacted space.
//
// Equivalence contract: Solve() is bitwise-identical to building the dense
// matrix over the row union's columns in first-appearance order and calling
// SolveAssignment on it. The compaction reproduces that first-appearance
// order, infeasible (absent) edges never touch minv in either formulation,
// and the delta/tie-break scan runs over the same compacted index range in
// the same order. Tests assert the equivalence on randomized instances.
//
// Repair() additionally supports delta-aware re-solve: given a previous
// optimal solution with its dual potentials, and a column-availability mask
// that only shrank since that solve (costs unchanged, rows a subset), it
// keeps the surviving tight matched edges and re-augments only the broken
// rows. In the unbalanced case the optimality certificate is feasible duals
// + tight matched edges + *zero potential on every unmatched column*; a
// deletion can strand a freed column at a negative potential, so Repair
// first restores the certificate (raise freed columns to zero, relax rows
// the raise made infeasible, unmatch edges that went slack, to fixpoint)
// before resuming SSP — see DESIGN.md §13. The result is again a min-cost
// perfect matching with the same cost and size as a cold solve, though
// possibly a different equal-cost matching when ties exist, which is why
// delta repair is opt-in.
#ifndef DASC_MATCHING_SPARSE_ASSIGNMENT_H_
#define DASC_MATCHING_SPARSE_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

namespace dasc::matching {

// One row of a sparse assignment problem: candidate columns in a
// caller-defined global column space, with finite non-negative costs.
// Columns not listed are forbidden. Typically a view into
// core::CandidateEdges, filtered on the fly by `avail`.
struct SparseRow {
  const int32_t* cols = nullptr;
  const double* costs = nullptr;
  int64_t size = 0;
};

struct SparseAssignmentResult {
  // True iff every row was matched to a distinct available column.
  bool feasible = false;
  // Total cost of the matching (only meaningful when feasible).
  double cost = 0.0;
  // row_to_col[r] = matched global column of row r, or -1 when infeasible.
  std::vector<int32_t> row_to_col;
};

// Dual certificate of an optimal solve, consumed by Repair(). Potentials
// satisfy u[r] + v[c] <= cost(r, c) on every available edge, with equality
// on matched edges.
struct SparseDuals {
  std::vector<double> row_dual;   // u, aligned to the solve's rows
  std::vector<int32_t> cols;      // column union, compaction (rank) order
  std::vector<double> col_dual;   // v, aligned to `cols`
};

class SparseAssignmentSolver {
 public:
  // Declares the global column-space size. Scratch is epoch-stamped, so this
  // is O(num_cols) once and O(1) on repeated calls with the same size.
  void Reset(int num_cols);

  // Min-cost perfect matching of all `num_rows` rows onto distinct columns
  // with avail[col] != 0 (avail == nullptr means every column available).
  // `duals` is optional; when given, it is filled with the optimality
  // certificate needed for later Repair() calls.
  SparseAssignmentResult Solve(const SparseRow* rows, int num_rows,
                               const uint8_t* avail,
                               SparseDuals* duals = nullptr);

  // Re-solves after columns disappeared and/or rows were dropped, reusing
  // `prev` + `prev_duals` from an earlier Solve()/Repair() over the SAME
  // rows array with IDENTICAL costs and a superset of availability.
  // row_live[r] == 0 drops row r (its result slot stays -1). Updates `prev`
  // and `prev_duals` in place so repairs chain. Returns the number of rows
  // re-augmented (or -1 when the shrunken problem became infeasible, in
  // which case prev->feasible is false).
  int Repair(const SparseRow* rows, int num_rows, const uint8_t* avail,
             const uint8_t* row_live, SparseAssignmentResult* prev,
             SparseDuals* prev_duals);

 private:
  // Assigns compaction ranks (first-appearance order over rows' available
  // edges) for the current epoch. Returns the union size.
  int CompactColumns(const SparseRow* rows, int num_rows,
                     const uint8_t* avail);
  // Augments `row` (1-indexed) in the current compacted problem; returns
  // false when no augmenting path through available edges exists.
  bool Augment(int row, const SparseRow* rows, const uint8_t* avail, int k);

  int num_cols_ = 0;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> rank_epoch_;  // per global column
  std::vector<int32_t> rank_of_;      // per global column, valid @ epoch_
  std::vector<int32_t> rank_cols_;    // rank -> global column

  // Rank-space SAP state (1-indexed like the dense solver), reused across
  // solves; resized to the union, not the global space.
  std::vector<double> u_, v_, minv_;
  std::vector<int32_t> match_, way_;
  std::vector<char> used_;
  std::vector<uint8_t> row_matched_;  // Repair() scratch
  int64_t augment_steps_ = 0;
};

}  // namespace dasc::matching

#endif  // DASC_MATCHING_SPARSE_ASSIGNMENT_H_
