// Bertsekas auction algorithm for the assignment problem.
//
// An alternative backend to the Hungarian algorithm: rows bid for columns
// with ε-complementary slackness. For integer-valued costs and ε < 1/n the
// result is optimal; for real costs the total is within n·ε of optimal.
// Included both as an ablation backend and because auctions parallelize /
// incrementalize better than shortest augmenting paths in platform settings.
#ifndef DASC_MATCHING_AUCTION_H_
#define DASC_MATCHING_AUCTION_H_

#include <cstdint>
#include <vector>

#include "matching/hungarian.h"

namespace dasc::matching {

struct AuctionOptions {
  // Bidding increment; smaller = closer to optimal, more rounds.
  double epsilon = 1e-3;
  // ε-scaling: start at max_cost/2 and divide by `scaling_factor` until
  // `epsilon` is reached (<= 1 disables scaling — the default, because with
  // rows < cols the carried-over prices of columns left unassigned between
  // phases break the n·ε optimality bound; single-phase from zero prices is
  // always within rows·epsilon of optimal).
  double scaling_factor = 0.0;
  // Safety cap on total bids (0 = none).
  int64_t max_bids = 0;
};

// Minimizes total cost assigning every row to a distinct column; same
// contract as SolveAssignment (rows <= cols, kInfeasible marks forbidden
// edges, finite costs non-negative). `result.cost` is within
// rows * epsilon of the optimum when feasible.
HungarianResult AuctionAssignment(const std::vector<std::vector<double>>& cost,
                                  const AuctionOptions& options = {});

}  // namespace dasc::matching

#endif  // DASC_MATCHING_AUCTION_H_
