// Hopcroft-Karp maximum bipartite matching in O(E * sqrt(V)).
//
// Used as the fast feasibility-only backend for DASC_Greedy ("can this
// associative task set be fully served?") when travel-cost tie-breaking is
// not needed.
#ifndef DASC_MATCHING_HOPCROFT_KARP_H_
#define DASC_MATCHING_HOPCROFT_KARP_H_

#include <cstdint>
#include <vector>

namespace dasc::matching {

class HopcroftKarp {
 public:
  HopcroftKarp(int num_left, int num_right);

  // Adds an edge between left vertex u and right vertex v.
  void AddEdge(int u, int v);

  // Seeds the matching with a first-fit greedy pass before MaxMatching().
  // The final matching size is unchanged (Hopcroft-Karp augments any partial
  // matching to maximum), but typical instances then need only a couple of
  // BFS/DFS phases. Which particular maximum matching MatchOfLeft/-Right
  // report may differ from the unseeded run, so callers that consume the
  // matched identities (DASC_Greedy's tie-broken variants) should not seed.
  void SeedGreedy();

  // Computes a maximum matching; returns its size. Idempotent.
  int MaxMatching();

  // After MaxMatching(): matched right vertex of left u, or -1.
  int MatchOfLeft(int u) const;
  // After MaxMatching(): matched left vertex of right v, or -1.
  int MatchOfRight(int v) const;

 private:
  bool Bfs();
  bool Dfs(int u);

  int num_left_;
  int num_right_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> dist_;
  bool solved_ = false;
};

// One-call maximum-matching size over adjacency lists (left_adj[u] = right
// vertices reachable from left vertex u; entries must be in [0, num_right)).
// This is the relaxed-upper-bound entry point used by the allocation auditor
// (sim::BatchAuditor): dropping a constraint from the batch problem can only
// enlarge the edge set, so the resulting maximum matching bounds the
// constrained optimum from above.
int MaxMatchingSize(const std::vector<std::vector<int>>& left_adj,
                    int num_right);

}  // namespace dasc::matching

#endif  // DASC_MATCHING_HOPCROFT_KARP_H_
