// Hopcroft-Karp maximum bipartite matching in O(E * sqrt(V)).
//
// Used as the fast feasibility-only backend for DASC_Greedy ("can this
// associative task set be fully served?") when travel-cost tie-breaking is
// not needed.
#ifndef DASC_MATCHING_HOPCROFT_KARP_H_
#define DASC_MATCHING_HOPCROFT_KARP_H_

#include <cstdint>
#include <vector>

namespace dasc::matching {

class HopcroftKarp {
 public:
  HopcroftKarp(int num_left, int num_right);

  // Adds an edge between left vertex u and right vertex v.
  void AddEdge(int u, int v);

  // Computes a maximum matching; returns its size. Idempotent.
  int MaxMatching();

  // After MaxMatching(): matched right vertex of left u, or -1.
  int MatchOfLeft(int u) const;
  // After MaxMatching(): matched left vertex of right v, or -1.
  int MatchOfRight(int v) const;

 private:
  bool Bfs();
  bool Dfs(int u);

  int num_left_;
  int num_right_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> dist_;
  bool solved_ = false;
};

}  // namespace dasc::matching

#endif  // DASC_MATCHING_HOPCROFT_KARP_H_
