#include "matching/sparse_assignment.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/metrics.h"

namespace dasc::matching {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void SparseAssignmentSolver::Reset(int num_cols) {
  DASC_CHECK_GE(num_cols, 0);
  num_cols_ = num_cols;
  if (static_cast<int>(rank_epoch_.size()) < num_cols) {
    rank_epoch_.assign(static_cast<size_t>(num_cols), 0);
    rank_of_.resize(static_cast<size_t>(num_cols));
    rank_cols_.resize(static_cast<size_t>(num_cols));
    epoch_ = 0;
  }
}

int SparseAssignmentSolver::CompactColumns(const SparseRow* rows, int num_rows,
                                           const uint8_t* avail) {
  if (++epoch_ == 0) {  // wrapped: invalidate every stamp
    std::fill(rank_epoch_.begin(), rank_epoch_.end(), 0u);
    epoch_ = 1;
  }
  // First-appearance order over (row order, edge order) — exactly the
  // column order the dense path's per-attempt compaction produced, so
  // rank-space tie-breaks reproduce the dense solver's bit for bit.
  int k = 0;
  for (int r = 0; r < num_rows; ++r) {
    for (int64_t e = 0; e < rows[r].size; ++e) {
      const int32_t c = rows[r].cols[e];
      DASC_DCHECK(c < num_cols_);
      if (avail != nullptr && avail[c] == 0) continue;
      if (rank_epoch_[static_cast<size_t>(c)] != epoch_) {
        rank_epoch_[static_cast<size_t>(c)] = epoch_;
        rank_of_[static_cast<size_t>(c)] = k;
        rank_cols_[static_cast<size_t>(k)] = c;
        ++k;
      }
    }
  }
  return k;
}

bool SparseAssignmentSolver::Augment(int row, const SparseRow* rows,
                                     const uint8_t* avail, int k) {
  match_[0] = row;
  int j0 = 0;
  minv_.assign(static_cast<size_t>(k) + 1, kInf);
  used_.assign(static_cast<size_t>(k) + 1, 0);
  do {
    ++augment_steps_;
    used_[static_cast<size_t>(j0)] = 1;
    const int i0 = match_[static_cast<size_t>(j0)];
    double delta = kInf;
    int j1 = -1;
    // Relax only the current row's real edges; absent (infeasible) edges
    // keep minv at +inf, exactly as they would under the dense scan.
    const SparseRow& r = rows[i0 - 1];
    for (int64_t e = 0; e < r.size; ++e) {
      const int32_t c = r.cols[e];
      if (avail != nullptr && avail[c] == 0) continue;
      const int j = rank_of_[static_cast<size_t>(c)] + 1;
      if (used_[static_cast<size_t>(j)]) continue;
      const double cur = r.costs[e] - u_[static_cast<size_t>(i0)] -
                         v_[static_cast<size_t>(j)];
      if (cur < minv_[static_cast<size_t>(j)]) {
        minv_[static_cast<size_t>(j)] = cur;
        way_[static_cast<size_t>(j)] = j0;
      }
    }
    // Delta scan in rank order: lowest rank wins ties, matching the dense
    // solver's ascending-column scan.
    for (int j = 1; j <= k; ++j) {
      if (used_[static_cast<size_t>(j)]) continue;
      if (minv_[static_cast<size_t>(j)] < delta) {
        delta = minv_[static_cast<size_t>(j)];
        j1 = j;
      }
    }
    if (!std::isfinite(delta)) return false;
    for (int j = 0; j <= k; ++j) {
      if (used_[static_cast<size_t>(j)]) {
        u_[static_cast<size_t>(match_[static_cast<size_t>(j)])] += delta;
        v_[static_cast<size_t>(j)] -= delta;
      } else {
        minv_[static_cast<size_t>(j)] -= delta;
      }
    }
    j0 = j1;
  } while (match_[static_cast<size_t>(j0)] != 0);
  do {  // unwind the alternating path
    const int j1 = way_[static_cast<size_t>(j0)];
    match_[static_cast<size_t>(j0)] = match_[static_cast<size_t>(j1)];
    j0 = j1;
  } while (j0 != 0);
  return true;
}

SparseAssignmentResult SparseAssignmentSolver::Solve(const SparseRow* rows,
                                                     int num_rows,
                                                     const uint8_t* avail,
                                                     SparseDuals* duals) {
  SparseAssignmentResult result;
  result.row_to_col.assign(static_cast<size_t>(num_rows), -1);
  if (num_rows == 0) {
    result.feasible = true;
    return result;
  }
  augment_steps_ = 0;
  const int k = CompactColumns(rows, num_rows, avail);
  DASC_METRIC_COUNTER_INC("matching_sparse_solves_total");
  if (k < num_rows) return result;  // pigeonhole: no perfect matching

  u_.assign(static_cast<size_t>(num_rows) + 1, 0.0);
  v_.assign(static_cast<size_t>(k) + 1, 0.0);
  match_.assign(static_cast<size_t>(k) + 1, 0);
  way_.assign(static_cast<size_t>(k) + 1, 0);
  for (int i = 1; i <= num_rows; ++i) {
    if (!Augment(i, rows, avail, k)) {
      DASC_METRIC_COUNTER_ADD("matching_sparse_augment_steps_total",
                              augment_steps_);
      return result;
    }
  }
  DASC_METRIC_COUNTER_ADD("matching_sparse_augment_steps_total",
                          augment_steps_);

  for (int j = 1; j <= k; ++j) {
    const int i = match_[static_cast<size_t>(j)];
    if (i > 0) {
      result.row_to_col[static_cast<size_t>(i - 1)] =
          rank_cols_[static_cast<size_t>(j - 1)];
    }
  }
  // Sum actual edge costs in row order (the dense solver's accumulation
  // order), not u+v, so the total is bit-identical.
  double total = 0.0;
  for (int r = 0; r < num_rows; ++r) {
    const int32_t c = result.row_to_col[static_cast<size_t>(r)];
    DASC_CHECK_GE(c, 0);
    double edge = kInf;
    for (int64_t e = 0; e < rows[r].size; ++e) {
      if (rows[r].cols[e] == c) {
        edge = rows[r].costs[e];
        break;
      }
    }
    DASC_CHECK(std::isfinite(edge)) << "matched through a forbidden edge";
    total += edge;
  }
  result.feasible = true;
  result.cost = total;

  if (duals != nullptr) {
    duals->row_dual.assign(u_.begin() + 1,
                           u_.begin() + 1 + num_rows);
    duals->cols.assign(rank_cols_.begin(), rank_cols_.begin() + k);
    duals->col_dual.assign(v_.begin() + 1, v_.begin() + 1 + k);
  }
  return result;
}

int SparseAssignmentSolver::Repair(const SparseRow* rows, int num_rows,
                                   const uint8_t* avail,
                                   const uint8_t* row_live,
                                   SparseAssignmentResult* prev,
                                   SparseDuals* prev_duals) {
  DASC_CHECK(prev != nullptr && prev_duals != nullptr);
  DASC_CHECK(prev->feasible) << "Repair needs a feasible previous solution";
  DASC_CHECK_EQ(static_cast<int>(prev->row_to_col.size()), num_rows);

  auto live = [&](int r) { return row_live == nullptr || row_live[r] != 0; };
  int live_rows = 0;
  for (int r = 0; r < num_rows; ++r) {
    if (live(r)) ++live_rows;
  }
  if (live_rows == 0) {
    prev->row_to_col.assign(static_cast<size_t>(num_rows), -1);
    prev->cost = 0.0;
    return 0;
  }

  // Compact the shrunken union. The caller guarantees availability only
  // shrank and costs are unchanged, so the union is a subset of the one the
  // stored duals cover — every current column gets its stored potential and
  // dual feasibility carries over edge by edge.
  augment_steps_ = 0;
  int k = 0;
  {
    if (++epoch_ == 0) {
      std::fill(rank_epoch_.begin(), rank_epoch_.end(), 0u);
      epoch_ = 1;
    }
    for (int r = 0; r < num_rows; ++r) {
      if (!live(r)) continue;
      for (int64_t e = 0; e < rows[r].size; ++e) {
        const int32_t c = rows[r].cols[e];
        if (avail != nullptr && avail[c] == 0) continue;
        if (rank_epoch_[static_cast<size_t>(c)] != epoch_) {
          rank_epoch_[static_cast<size_t>(c)] = epoch_;
          rank_of_[static_cast<size_t>(c)] = k;
          rank_cols_[static_cast<size_t>(k)] = c;
          ++k;
        }
      }
    }
  }
  auto fail = [&]() {
    prev->feasible = false;
    prev->row_to_col.assign(static_cast<size_t>(num_rows), -1);
    DASC_METRIC_COUNTER_ADD("matching_sparse_augment_steps_total",
                            augment_steps_);
    return -1;
  };
  if (live_rows > k) return fail();

  u_.assign(static_cast<size_t>(num_rows) + 1, 0.0);
  v_.assign(static_cast<size_t>(k) + 1, 0.0);
  match_.assign(static_cast<size_t>(k) + 1, 0);
  way_.assign(static_cast<size_t>(k) + 1, 0);
  for (int r = 0; r < num_rows; ++r) {
    if (live(r)) u_[static_cast<size_t>(r + 1)] = prev_duals->row_dual[r];
  }
  for (size_t idx = 0; idx < prev_duals->cols.size(); ++idx) {
    const int32_t c = prev_duals->cols[idx];
    if (rank_epoch_[static_cast<size_t>(c)] == epoch_) {
      v_[static_cast<size_t>(rank_of_[static_cast<size_t>(c)] + 1)] =
          prev_duals->col_dual[idx];
    }
  }

  // Keep surviving matched edges (still tight under the loaded duals).
  row_matched_.assign(static_cast<size_t>(num_rows), 0);
  for (int r = 0; r < num_rows; ++r) {
    if (!live(r)) continue;
    const int32_t c = prev->row_to_col[static_cast<size_t>(r)];
    if (c >= 0 && (avail == nullptr || avail[c] != 0)) {
      match_[static_cast<size_t>(rank_of_[static_cast<size_t>(c)] + 1)] =
          r + 1;
      row_matched_[static_cast<size_t>(r)] = 1;
    }
  }

  // Deletions break the optimality certificate, not just the matching: in
  // the unbalanced case optimality needs zero potential on every unmatched
  // column, and a column freed by a dead row keeps its negative potential.
  // SSP resumed from such a state returns feasible but possibly
  // non-minimum matchings. Restore the certificate first: raise each freed
  // negative column to zero, lower any row potential the raise made
  // infeasible, and unmatch rows whose matched edge thereby went slack —
  // which can free further columns, so iterate to the fixpoint (each row
  // unmatches at most once, so it terminates).
  for (;;) {
    for (int j = 1; j <= k; ++j) {
      if (match_[static_cast<size_t>(j)] == 0 &&
          v_[static_cast<size_t>(j)] < 0.0) {
        v_[static_cast<size_t>(j)] = 0.0;
      }
    }
    bool freed_any = false;
    for (int r = 0; r < num_rows; ++r) {
      if (!live(r)) continue;
      const SparseRow& row = rows[r];
      double lo = kInf;
      for (int64_t e = 0; e < row.size; ++e) {
        const int32_t c = row.cols[e];
        if (avail != nullptr && avail[c] == 0) continue;
        const double slack =
            row.costs[e] -
            v_[static_cast<size_t>(rank_of_[static_cast<size_t>(c)] + 1)];
        if (slack < lo) lo = slack;
      }
      if (lo < u_[static_cast<size_t>(r + 1)]) {
        u_[static_cast<size_t>(r + 1)] = lo;
        if (row_matched_[static_cast<size_t>(r)]) {
          // The matched edge contributed cost - v to `lo`; a strictly
          // smaller minimum means that edge is now slack.
          const int32_t c = prev->row_to_col[static_cast<size_t>(r)];
          match_[static_cast<size_t>(rank_of_[static_cast<size_t>(c)] + 1)] =
              0;
          row_matched_[static_cast<size_t>(r)] = 0;
          freed_any = true;
        }
      }
    }
    if (!freed_any) break;
  }

  // Everything still unmatched re-augments in ascending row order.
  int repaired = 0;
  for (int r = 0; r < num_rows; ++r) {
    if (!live(r) || row_matched_[static_cast<size_t>(r)] != 0) continue;
    if (!Augment(r + 1, rows, avail, k)) return fail();
    ++repaired;
  }
  DASC_METRIC_COUNTER_ADD("matching_sparse_augment_steps_total",
                          augment_steps_);

  prev->row_to_col.assign(static_cast<size_t>(num_rows), -1);
  for (int j = 1; j <= k; ++j) {
    const int i = match_[static_cast<size_t>(j)];
    if (i > 0) {
      prev->row_to_col[static_cast<size_t>(i - 1)] =
          rank_cols_[static_cast<size_t>(j - 1)];
    }
  }
  double total = 0.0;
  for (int r = 0; r < num_rows; ++r) {
    if (!live(r)) continue;
    const int32_t c = prev->row_to_col[static_cast<size_t>(r)];
    DASC_CHECK_GE(c, 0);
    double edge = kInf;
    for (int64_t e = 0; e < rows[r].size; ++e) {
      if (rows[r].cols[e] == c) {
        edge = rows[r].costs[e];
        break;
      }
    }
    DASC_CHECK(std::isfinite(edge));
    total += edge;
  }
  prev->cost = total;

  prev_duals->row_dual.assign(static_cast<size_t>(num_rows), 0.0);
  for (int r = 0; r < num_rows; ++r) {
    if (live(r)) prev_duals->row_dual[r] = u_[static_cast<size_t>(r + 1)];
  }
  prev_duals->cols.assign(rank_cols_.begin(), rank_cols_.begin() + k);
  prev_duals->col_dual.assign(v_.begin() + 1, v_.begin() + 1 + k);
  return repaired;
}

}  // namespace dasc::matching
