// Hungarian algorithm (Kuhn-Munkres) for min-cost bipartite assignment.
//
// DASC_Greedy needs to decide whether the tasks of an associative task set
// can be simultaneously served by distinct feasible workers, and — among
// feasible matchings — prefers one with minimum total travel time. That is a
// rectangular min-cost assignment with forbidden edges, solved here with the
// O(rows^2 * cols) shortest-augmenting-path formulation.
#ifndef DASC_MATCHING_HUNGARIAN_H_
#define DASC_MATCHING_HUNGARIAN_H_

#include <limits>
#include <vector>

namespace dasc::matching {

// Marks a forbidden (infeasible) edge in the cost matrix.
inline constexpr double kInfeasible = std::numeric_limits<double>::infinity();

struct HungarianResult {
  // True iff every row could be matched using only feasible edges.
  bool feasible = false;
  // Total cost of the matching (only meaningful when feasible).
  double cost = 0.0;
  // row_to_col[i] = matched column of row i, or -1 when infeasible.
  std::vector<int> row_to_col;
};

// Solves min-cost assignment of every row to a distinct column.
// `cost` must be rectangular with rows <= cols (pad or transpose otherwise);
// entries may be kInfeasible. Finite costs must be non-negative.
HungarianResult SolveAssignment(const std::vector<std::vector<double>>& cost);

}  // namespace dasc::matching

#endif  // DASC_MATCHING_HUNGARIAN_H_
