#include "matching/auction.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/logging.h"
#include "util/metrics.h"

namespace dasc::matching {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

HungarianResult AuctionAssignment(const std::vector<std::vector<double>>& cost,
                                  const AuctionOptions& options) {
  HungarianResult result;
  const int rows = static_cast<int>(cost.size());
  if (rows == 0) {
    result.feasible = true;
    return result;
  }
  const int cols = static_cast<int>(cost[0].size());
  DASC_CHECK_LE(rows, cols) << "AuctionAssignment requires rows <= cols";
  DASC_CHECK_GT(options.epsilon, 0.0);

  // Work with values to maximize: v = -cost (forbidden -> -inf).
  std::vector<std::vector<double>> value(
      static_cast<size_t>(rows), std::vector<double>(static_cast<size_t>(cols),
                                                     kNegInf));
  double max_abs = 1.0;
  for (int i = 0; i < rows; ++i) {
    DASC_CHECK_EQ(static_cast<int>(cost[static_cast<size_t>(i)].size()), cols)
        << "cost matrix must be rectangular";
    bool any_finite = false;
    for (int j = 0; j < cols; ++j) {
      const double c = cost[static_cast<size_t>(i)][static_cast<size_t>(j)];
      if (std::isfinite(c)) {
        value[static_cast<size_t>(i)][static_cast<size_t>(j)] = -c;
        max_abs = std::max(max_abs, std::fabs(c));
        any_finite = true;
      }
    }
    if (!any_finite) {
      result.feasible = false;
      result.row_to_col.assign(static_cast<size_t>(rows), -1);
      return result;
    }
  }

  std::vector<double> price(static_cast<size_t>(cols), 0.0);
  std::vector<int> owner(static_cast<size_t>(cols), -1);
  std::vector<int> row_to_col(static_cast<size_t>(rows), -1);

  double eps = options.scaling_factor > 1.0
                   ? std::max(options.epsilon, max_abs / 2.0)
                   : options.epsilon;
  int num_phases = 1;
  for (double e = eps; e > options.epsilon;
       e = std::max(options.epsilon, e / options.scaling_factor)) {
    ++num_phases;
  }
  // A row whose only remaining option is column j bids this much: enough to
  // evict any rival that has alternatives, without tripping the bound.
  const double only_choice_increment = 2.0 * max_abs + 1.0;
  // Prices of a feasible problem stay bounded (Bertsekas: <= n*(C + eps) per
  // phase); beyond this cumulative bound some row set must be structurally
  // unmatchable (a Hall violation makes prices diverge).
  const double price_bound =
      static_cast<double>(num_phases + 1) * (rows + 1) *
          (only_choice_increment + eps + 1.0) +
      only_choice_increment;
  int64_t bids = 0;
  while (true) {
    // One ε-phase: auction until all rows matched.
    std::fill(owner.begin(), owner.end(), -1);
    std::fill(row_to_col.begin(), row_to_col.end(), -1);
    std::deque<int> unassigned;
    for (int i = 0; i < rows; ++i) unassigned.push_back(i);
    while (!unassigned.empty()) {
      if (options.max_bids > 0 && bids >= options.max_bids) {
        result.feasible = false;
        result.row_to_col.assign(static_cast<size_t>(rows), -1);
        return result;
      }
      ++bids;
      const int i = unassigned.front();
      unassigned.pop_front();
      // Best and second-best net value for row i.
      int best_j = -1;
      double best_net = kNegInf;
      double second_net = kNegInf;
      for (int j = 0; j < cols; ++j) {
        const double v = value[static_cast<size_t>(i)][static_cast<size_t>(j)];
        if (v == kNegInf) continue;
        const double net = v - price[static_cast<size_t>(j)];
        if (net > best_net) {
          second_net = best_net;
          best_net = net;
          best_j = j;
        } else if (net > second_net) {
          second_net = net;
        }
      }
      DASC_CHECK_GE(best_j, 0);
      const double increment =
          (second_net == kNegInf ? only_choice_increment
                                 : best_net - second_net) +
          eps;
      price[static_cast<size_t>(best_j)] += increment;
      if (price[static_cast<size_t>(best_j)] > price_bound) {
        // Structural infeasibility: some column set is over-demanded.
        result.feasible = false;
        result.row_to_col.assign(static_cast<size_t>(rows), -1);
        return result;
      }
      const int previous = owner[static_cast<size_t>(best_j)];
      if (previous >= 0) {
        row_to_col[static_cast<size_t>(previous)] = -1;
        unassigned.push_back(previous);
      }
      owner[static_cast<size_t>(best_j)] = i;
      row_to_col[static_cast<size_t>(i)] = best_j;
    }
    if (eps <= options.epsilon) break;
    eps = std::max(options.epsilon, eps / options.scaling_factor);
  }

  DASC_METRIC_COUNTER_ADD("matching_auction_bids_total", bids);
  DASC_METRIC_COUNTER_INC("matching_auction_solves_total");
  result.feasible = true;
  result.row_to_col = row_to_col;
  double total = 0.0;
  for (int i = 0; i < rows; ++i) {
    total += cost[static_cast<size_t>(i)]
                 [static_cast<size_t>(row_to_col[static_cast<size_t>(i)])];
  }
  result.cost = total;
  return result;
}

}  // namespace dasc::matching
