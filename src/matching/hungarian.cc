#include "matching/hungarian.h"

#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"

namespace dasc::matching {

HungarianResult SolveAssignment(const std::vector<std::vector<double>>& cost) {
  HungarianResult result;
  const int rows = static_cast<int>(cost.size());
  if (rows == 0) {
    result.feasible = true;
    return result;
  }
  const int cols = static_cast<int>(cost[0].size());
  DASC_CHECK_LE(rows, cols) << "SolveAssignment requires rows <= cols";
  for (const auto& row : cost) {
    DASC_CHECK_EQ(static_cast<int>(row.size()), cols)
        << "cost matrix must be rectangular";
  }

  // Shortest-augmenting-path Hungarian with potentials (1-indexed internal
  // arrays, the classic formulation). way[j] remembers the previous column on
  // the shortest alternating path to column j.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<size_t>(rows) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(cols) + 1, 0.0);
  std::vector<int> match(static_cast<size_t>(cols) + 1, 0);  // col -> row
  std::vector<int> way(static_cast<size_t>(cols) + 1, 0);

  int64_t augment_steps = 0;
  for (int i = 1; i <= rows; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(cols) + 1, kInf);
    std::vector<char> used(static_cast<size_t>(cols) + 1, 0);
    do {
      ++augment_steps;
      used[static_cast<size_t>(j0)] = 1;
      const int i0 = match[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= cols; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double edge =
            cost[static_cast<size_t>(i0 - 1)][static_cast<size_t>(j - 1)];
        const double cur = edge - u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      if (!std::isfinite(delta)) {
        // No augmenting path through feasible edges: row i cannot be matched.
        result.feasible = false;
        result.row_to_col.assign(static_cast<size_t>(rows), -1);
        DASC_METRIC_COUNTER_ADD("matching_hungarian_augment_steps_total",
                                augment_steps);
        DASC_METRIC_COUNTER_INC("matching_hungarian_solves_total");
        return result;
      }
      for (int j = 0; j <= cols; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<size_t>(j0)] != 0);
    // Unwind the alternating path.
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      match[static_cast<size_t>(j0)] = match[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  DASC_METRIC_COUNTER_ADD("matching_hungarian_augment_steps_total",
                          augment_steps);
  DASC_METRIC_COUNTER_INC("matching_hungarian_solves_total");
  result.feasible = true;
  result.row_to_col.assign(static_cast<size_t>(rows), -1);
  for (int j = 1; j <= cols; ++j) {
    const int i = match[static_cast<size_t>(j)];
    if (i > 0) result.row_to_col[static_cast<size_t>(i - 1)] = j - 1;
  }
  double total = 0.0;
  for (int i = 0; i < rows; ++i) {
    const int j = result.row_to_col[static_cast<size_t>(i)];
    DASC_CHECK_GE(j, 0);
    const double edge = cost[static_cast<size_t>(i)][static_cast<size_t>(j)];
    if (!std::isfinite(edge)) {
      // Matched through a forbidden edge; treat as infeasible.
      result.feasible = false;
      result.row_to_col.assign(static_cast<size_t>(rows), -1);
      return result;
    }
    total += edge;
  }
  result.cost = total;
  return result;
}

}  // namespace dasc::matching
