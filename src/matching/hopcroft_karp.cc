#include "matching/hopcroft_karp.h"

#include <deque>
#include <limits>

#include "util/logging.h"
#include "util/metrics.h"

namespace dasc::matching {

namespace {
constexpr int kInf = std::numeric_limits<int>::max();
}  // namespace

HopcroftKarp::HopcroftKarp(int num_left, int num_right)
    : num_left_(num_left),
      num_right_(num_right),
      adj_(static_cast<size_t>(num_left)),
      match_left_(static_cast<size_t>(num_left), -1),
      match_right_(static_cast<size_t>(num_right), -1),
      dist_(static_cast<size_t>(num_left), 0) {
  DASC_CHECK_GE(num_left, 0);
  DASC_CHECK_GE(num_right, 0);
}

void HopcroftKarp::AddEdge(int u, int v) {
  DASC_CHECK_GE(u, 0);
  DASC_CHECK_LT(u, num_left_);
  DASC_CHECK_GE(v, 0);
  DASC_CHECK_LT(v, num_right_);
  adj_[static_cast<size_t>(u)].push_back(v);
  solved_ = false;
}

bool HopcroftKarp::Bfs() {
  std::deque<int> queue;
  for (int u = 0; u < num_left_; ++u) {
    if (match_left_[static_cast<size_t>(u)] == -1) {
      dist_[static_cast<size_t>(u)] = 0;
      queue.push_back(u);
    } else {
      dist_[static_cast<size_t>(u)] = kInf;
    }
  }
  bool found_augmenting = false;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : adj_[static_cast<size_t>(u)]) {
      const int w = match_right_[static_cast<size_t>(v)];
      if (w == -1) {
        found_augmenting = true;
      } else if (dist_[static_cast<size_t>(w)] == kInf) {
        dist_[static_cast<size_t>(w)] = dist_[static_cast<size_t>(u)] + 1;
        queue.push_back(w);
      }
    }
  }
  return found_augmenting;
}

bool HopcroftKarp::Dfs(int u) {
  for (int v : adj_[static_cast<size_t>(u)]) {
    const int w = match_right_[static_cast<size_t>(v)];
    if (w == -1 ||
        (dist_[static_cast<size_t>(w)] == dist_[static_cast<size_t>(u)] + 1 &&
         Dfs(w))) {
      match_left_[static_cast<size_t>(u)] = v;
      match_right_[static_cast<size_t>(v)] = u;
      return true;
    }
  }
  dist_[static_cast<size_t>(u)] = kInf;
  return false;
}

void HopcroftKarp::SeedGreedy() {
  for (int u = 0; u < num_left_; ++u) {
    if (match_left_[static_cast<size_t>(u)] != -1) continue;
    for (int v : adj_[static_cast<size_t>(u)]) {
      if (match_right_[static_cast<size_t>(v)] == -1) {
        match_left_[static_cast<size_t>(u)] = v;
        match_right_[static_cast<size_t>(v)] = u;
        break;
      }
    }
  }
  solved_ = false;
}

int HopcroftKarp::MaxMatching() {
  if (!solved_) {
    int64_t augmented = 0;
    int64_t phases = 0;
    while (Bfs()) {
      ++phases;
      for (int u = 0; u < num_left_; ++u) {
        if (match_left_[static_cast<size_t>(u)] == -1 && Dfs(u)) ++augmented;
      }
    }
    solved_ = true;
    DASC_METRIC_COUNTER_ADD("matching_hk_phases_total", phases);
    DASC_METRIC_COUNTER_ADD("matching_hk_augmenting_paths_total", augmented);
    DASC_METRIC_COUNTER_INC("matching_hk_solves_total");
  }
  int size = 0;
  for (int u = 0; u < num_left_; ++u) {
    if (match_left_[static_cast<size_t>(u)] != -1) ++size;
  }
  return size;
}

int MaxMatchingSize(const std::vector<std::vector<int>>& left_adj,
                    int num_right) {
  HopcroftKarp hk(static_cast<int>(left_adj.size()), num_right);
  for (size_t u = 0; u < left_adj.size(); ++u) {
    for (int v : left_adj[u]) {
      hk.AddEdge(static_cast<int>(u), v);
    }
  }
  hk.SeedGreedy();
  return hk.MaxMatching();
}

int HopcroftKarp::MatchOfLeft(int u) const {
  DASC_CHECK_GE(u, 0);
  DASC_CHECK_LT(u, num_left_);
  return match_left_[static_cast<size_t>(u)];
}

int HopcroftKarp::MatchOfRight(int v) const {
  DASC_CHECK_GE(v, 0);
  DASC_CHECK_LT(v, num_right_);
  return match_right_[static_cast<size_t>(v)];
}

}  // namespace dasc::matching
