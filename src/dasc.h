// Umbrella header: the full public API of the DA-SC library.
//
// Include this for quick starts; production code should include the specific
// module headers it uses (they are all self-contained).
#ifndef DASC_DASC_H_
#define DASC_DASC_H_

#include "algo/baselines.h"      // IWYU pragma: export
#include "algo/exact.h"          // IWYU pragma: export
#include "algo/game.h"           // IWYU pragma: export
#include "algo/greedy.h"         // IWYU pragma: export
#include "algo/heuristics.h"     // IWYU pragma: export
#include "algo/local_search.h"   // IWYU pragma: export
#include "algo/registry.h"       // IWYU pragma: export
#include "core/assignment.h"     // IWYU pragma: export
#include "core/batch.h"          // IWYU pragma: export
#include "core/feasibility.h"    // IWYU pragma: export
#include "core/instance.h"       // IWYU pragma: export
#include "core/workload_stats.h" // IWYU pragma: export
#include "gen/meetup.h"          // IWYU pragma: export
#include "gen/perturb.h"         // IWYU pragma: export
#include "gen/synthetic.h"       // IWYU pragma: export
#include "geo/kdtree.h"          // IWYU pragma: export
#include "geo/road_network.h"    // IWYU pragma: export
#include "graph/dag_stats.h"     // IWYU pragma: export
#include "io/instance_io.h"      // IWYU pragma: export
#include "io/svg_render.h"       // IWYU pragma: export
#include "sim/metrics.h"         // IWYU pragma: export
#include "sim/platform.h"        // IWYU pragma: export
#include "sim/simulator.h"       // IWYU pragma: export

#endif  // DASC_DASC_H_
