// Synthetic workload generator (paper Section V-A, Table V).
#ifndef DASC_GEN_SYNTHETIC_H_
#define DASC_GEN_SYNTHETIC_H_

#include "core/instance.h"
#include "gen/params.h"

namespace dasc::gen {

// Generates an Instance following the paper's synthetic data recipe:
//  * worker/task locations uniform in [0, area_side]^2,
//  * worker skill sets / velocities / max distances / start & wait times
//    uniform in their configured ranges,
//  * each task requires one uniformly random skill,
//  * dependencies: for each task t (in generation order), repeatedly pick a
//    uniformly random earlier task and union it *and its dependency set*
//    into D_t until |D_t| reaches a target drawn from `dependency_size`
//    (guaranteeing acyclicity and transitive closedness, exactly as in the
//    paper).
util::Result<core::Instance> GenerateSynthetic(const SyntheticParams& params);

}  // namespace dasc::gen

#endif  // DASC_GEN_SYNTHETIC_H_
