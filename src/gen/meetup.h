// Meetup-like workload generator.
//
// The paper evaluates on a crawl of meetup.com (5.1M users / 5.1M events /
// 97K groups, filtered to Hong Kong: 3,525 workers, 1,282 tasks). The crawl
// is not redistributable, so this module synthesizes an event-based social
// network with the properties the experiments actually consume:
//  * a Zipf-skewed tag (skill) vocabulary — few popular tags, many rare ones,
//  * groups with tag sets and spatially clustered venues inside the paper's
//    Hong Kong bounding box,
//  * users located near group venues whose skills are sampled from the tags
//    of groups they belong to,
//  * events (task groups) per group; tasks within a task group each require
//    one group tag and depend on a random subset of *earlier tasks of the
//    same group*, closed transitively — exactly the paper's Section V-A
//    dependency construction for real data.
// See DESIGN.md §5 for the substitution rationale.
#ifndef DASC_GEN_MEETUP_H_
#define DASC_GEN_MEETUP_H_

#include "core/instance.h"
#include "gen/params.h"

namespace dasc::gen {

util::Result<core::Instance> GenerateMeetup(const MeetupParams& params);

}  // namespace dasc::gen

#endif  // DASC_GEN_MEETUP_H_
