#include "gen/perturb.h"

#include <algorithm>

#include "util/rng.h"

namespace dasc::gen {

util::Result<core::Instance> Perturb(const core::Instance& instance,
                                     const PerturbParams& params) {
  if (params.wait_time_factor <= 0.0) {
    return util::Status::InvalidArgument("wait_time_factor must be positive");
  }
  util::Rng rng(params.seed);

  std::vector<core::Worker> workers;
  for (const core::Worker& original : instance.workers()) {
    if (rng.Bernoulli(params.worker_drop_probability)) continue;
    core::Worker w = original;
    w.id = static_cast<core::WorkerId>(workers.size());
    if (params.location_stddev > 0.0) {
      w.location.x = rng.Gaussian(w.location.x, params.location_stddev);
      w.location.y = rng.Gaussian(w.location.y, params.location_stddev);
    }
    if (params.start_time_stddev > 0.0) {
      w.start_time =
          std::max(0.0, rng.Gaussian(w.start_time, params.start_time_stddev));
    }
    w.wait_time *= params.wait_time_factor;
    workers.push_back(std::move(w));
  }

  // Survivor map for task id remapping.
  std::vector<core::TaskId> new_id(
      static_cast<size_t>(instance.num_tasks()), core::kInvalidId);
  std::vector<core::Task> tasks;
  for (const core::Task& original : instance.tasks()) {
    if (rng.Bernoulli(params.task_drop_probability)) continue;
    new_id[static_cast<size_t>(original.id)] =
        static_cast<core::TaskId>(tasks.size());
    core::Task t = original;
    t.id = new_id[static_cast<size_t>(original.id)];
    if (params.location_stddev > 0.0) {
      t.location.x = rng.Gaussian(t.location.x, params.location_stddev);
      t.location.y = rng.Gaussian(t.location.y, params.location_stddev);
    }
    if (params.start_time_stddev > 0.0) {
      t.start_time =
          std::max(0.0, rng.Gaussian(t.start_time, params.start_time_stddev));
    }
    t.wait_time *= params.wait_time_factor;
    tasks.push_back(std::move(t));
  }
  // Remap dependency ids; dependencies on dropped tasks vanish (treated as
  // never required).
  for (core::Task& t : tasks) {
    std::vector<core::TaskId> remapped;
    for (core::TaskId d : t.dependencies) {
      const core::TaskId nd = new_id[static_cast<size_t>(d)];
      if (nd != core::kInvalidId) remapped.push_back(nd);
    }
    t.dependencies = std::move(remapped);
  }

  return core::Instance::Create(std::move(workers), std::move(tasks),
                                instance.num_skills());
}

}  // namespace dasc::gen
