// Workload perturbation: controlled mutations of an existing instance for
// robustness testing ("does the allocator degrade gracefully under location
// noise / worker churn / tighter deadlines?").
#ifndef DASC_GEN_PERTURB_H_
#define DASC_GEN_PERTURB_H_

#include "core/instance.h"

namespace dasc::gen {

struct PerturbParams {
  uint64_t seed = 42;
  // Gaussian jitter (stddev) applied to every worker/task location.
  double location_stddev = 0.0;
  // Gaussian jitter applied to start times (clamped at 0).
  double start_time_stddev = 0.0;
  // Multiply every wait time by this factor (tighter < 1 < looser).
  double wait_time_factor = 1.0;
  // Independently drop each worker with this probability.
  double worker_drop_probability = 0.0;
  // Independently drop each *dependency-free* task with this probability
  // (dropping dependent tasks would orphan dependency ids; dependents are
  // remapped, so dropping any task is safe — see implementation).
  double task_drop_probability = 0.0;
};

// Returns a perturbed copy of `instance`. Dropped tasks are removed from the
// dependency sets of survivors (a dependency that disappears is treated as
// never required); ids are re-densified.
util::Result<core::Instance> Perturb(const core::Instance& instance,
                                     const PerturbParams& params);

}  // namespace dasc::gen

#endif  // DASC_GEN_PERTURB_H_
