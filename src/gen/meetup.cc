#include "gen/meetup.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace dasc::gen {

namespace {

// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

struct Group {
  geo::Point venue;                    // cluster center
  std::vector<core::SkillId> tags;     // the group's tag set
};

}  // namespace

util::Result<core::Instance> GenerateMeetup(const MeetupParams& params) {
  if (params.num_groups <= 0) {
    return util::Status::InvalidArgument("num_groups must be positive");
  }
  if (params.num_skills <= 0) {
    return util::Status::InvalidArgument("num_skills must be positive");
  }
  if (params.group_tags.lo < 1 || params.worker_skills.lo < 1) {
    return util::Status::InvalidArgument(
        "groups and workers need at least one tag");
  }
  util::Rng rng(params.seed);

  // --- Groups: Zipf-skewed tags, venues uniform in the bounding box. ---
  const double lon_center = 0.5 * (params.lon_min + params.lon_max);
  const double lat_center = 0.5 * (params.lat_min + params.lat_max);
  std::vector<Group> groups(static_cast<size_t>(params.num_groups));
  for (Group& g : groups) {
    if (params.venue_stddev > 0.0) {
      g.venue = {Clamp(rng.Gaussian(lon_center, params.venue_stddev),
                       params.lon_min, params.lon_max),
                 Clamp(rng.Gaussian(lat_center, params.venue_stddev),
                       params.lat_min, params.lat_max)};
    } else {
      g.venue = {rng.UniformDouble(params.lon_min, params.lon_max),
                 rng.UniformDouble(params.lat_min, params.lat_max)};
    }
    const int num_tags = static_cast<int>(
        rng.UniformInt(params.group_tags.lo, params.group_tags.hi));
    std::unordered_set<core::SkillId> tags;
    // Bounded draws: popular tags collide often under Zipf.
    for (int draw = 0; draw < 8 * num_tags + 16 &&
                       static_cast<int>(tags.size()) < num_tags;
         ++draw) {
      tags.insert(static_cast<core::SkillId>(
          rng.Zipf(params.num_skills, params.tag_zipf_exponent)));
    }
    g.tags.assign(tags.begin(), tags.end());
    std::sort(g.tags.begin(), g.tags.end());
  }

  // --- Workers (users): located near a home group, tags from groups they
  // belong to (home group plus possibly a second one). ---
  std::vector<core::Worker> workers;
  workers.reserve(static_cast<size_t>(params.num_workers));
  for (int i = 0; i < params.num_workers; ++i) {
    const Group& home = groups[static_cast<size_t>(
        rng.UniformInt(0, params.num_groups - 1))];
    core::Worker w;
    w.id = i;
    w.location = {
        Clamp(rng.Gaussian(home.venue.x, params.cluster_stddev),
              params.lon_min, params.lon_max),
        Clamp(rng.Gaussian(home.venue.y, params.cluster_stddev),
              params.lat_min, params.lat_max)};
    w.start_time = rng.UniformDouble(params.start_time.lo, params.start_time.hi);
    w.wait_time = rng.UniformDouble(params.wait_time.lo, params.wait_time.hi);
    w.velocity = rng.UniformDouble(params.velocity.lo, params.velocity.hi);
    w.max_distance =
        rng.UniformDouble(params.max_distance.lo, params.max_distance.hi);

    std::unordered_set<core::SkillId> skills;
    const int num_skills = static_cast<int>(
        rng.UniformInt(params.worker_skills.lo, params.worker_skills.hi));
    const Group& second = groups[static_cast<size_t>(
        rng.UniformInt(0, params.num_groups - 1))];
    std::vector<core::SkillId> pool = home.tags;
    pool.insert(pool.end(), second.tags.begin(), second.tags.end());
    for (int draw = 0; draw < 8 * num_skills + 16 &&
                       static_cast<int>(skills.size()) < num_skills;
         ++draw) {
      skills.insert(pool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))]);
    }
    w.skills.assign(skills.begin(), skills.end());
    workers.push_back(std::move(w));
  }

  // --- Tasks: events assigned round-robin-randomly to groups; each event's
  // tasks (one per generated task slot) are placed near the group venue and
  // depend on earlier tasks of the same group, closed transitively. ---
  // --- Tasks: a task group is one *event*. The event is created at a
  // uniform time and its tasks are posted in a short burst after it, so the
  // group's dependency chain is temporally co-open (the paper's Example 1
  // situation). Dependencies point to earlier tasks of the same group,
  // closed transitively (Section V-A). ---
  std::vector<int> group_of(static_cast<size_t>(params.num_tasks));
  for (int& g : group_of) {
    g = static_cast<int>(rng.UniformInt(0, params.num_groups - 1));
  }
  std::vector<double> group_start(static_cast<size_t>(params.num_groups));
  for (double& s : group_start) {
    s = rng.UniformDouble(params.start_time.lo, params.start_time.hi);
  }

  std::vector<core::Task> tasks;
  tasks.reserve(static_cast<size_t>(params.num_tasks));
  // Per group: ids and burst offsets of already-generated tasks.
  std::vector<std::vector<core::TaskId>> group_tasks(
      static_cast<size_t>(params.num_groups));
  // closures[t]: transitive dependency set (kept closed during generation).
  std::vector<std::vector<core::TaskId>> closures(
      static_cast<size_t>(params.num_tasks));
  std::vector<double> offsets(static_cast<size_t>(params.num_tasks), 0.0);
  for (int i = 0; i < params.num_tasks; ++i) {
    const int gi = group_of[static_cast<size_t>(i)];
    const Group& g = groups[static_cast<size_t>(gi)];
    core::Task t;
    t.id = i;
    t.location = {
        Clamp(rng.Gaussian(g.venue.x, params.cluster_stddev), params.lon_min,
              params.lon_max),
        Clamp(rng.Gaussian(g.venue.y, params.cluster_stddev), params.lat_min,
              params.lat_max)};
    offsets[static_cast<size_t>(i)] =
        rng.UniformDouble(0.0, params.group_burst_spread);
    t.start_time = group_start[static_cast<size_t>(gi)];
    t.wait_time = rng.UniformDouble(params.wait_time.lo, params.wait_time.hi);
    t.required_skill = g.tags[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(g.tags.size()) - 1))];

    // Dependencies among *earlier-posted* siblings (smaller burst offset)
    // keep the chain temporally ordered within the burst.
    auto& siblings = group_tasks[static_cast<size_t>(gi)];
    std::vector<core::TaskId> earlier;
    for (core::TaskId j : siblings) {
      if (offsets[static_cast<size_t>(j)] <= offsets[static_cast<size_t>(i)]) {
        earlier.push_back(j);
      }
    }
    t.start_time += offsets[static_cast<size_t>(i)];
    const int target = static_cast<int>(rng.UniformInt(
        params.group_task_deps.lo, params.group_task_deps.hi));
    if (!earlier.empty() && target > 0) {
      std::unordered_set<core::TaskId> deps;
      const int max_draws = 4 * target + 16;
      for (int draw = 0; draw < max_draws &&
                         static_cast<int>(deps.size()) < target;
           ++draw) {
        const core::TaskId j = earlier[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(earlier.size()) - 1))];
        if (deps.contains(j)) continue;
        const auto& sub = closures[static_cast<size_t>(j)];
        if (static_cast<int>(deps.size() + 1 + sub.size()) > target) continue;
        // "when we add t_j into t_i's dependency set, we also add t_j's
        // dependency set D_j" (Section V-A).
        deps.insert(j);
        deps.insert(sub.begin(), sub.end());
      }
      closures[static_cast<size_t>(i)].assign(deps.begin(), deps.end());
      std::sort(closures[static_cast<size_t>(i)].begin(),
                closures[static_cast<size_t>(i)].end());
      t.dependencies = closures[static_cast<size_t>(i)];
    }
    siblings.push_back(i);
    tasks.push_back(std::move(t));
  }

  return core::Instance::Create(std::move(workers), std::move(tasks),
                                params.num_skills);
}

}  // namespace dasc::gen
