#include "gen/synthetic.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace dasc::gen {

namespace {

// Draws `count` distinct values from [0, universe).
std::vector<int32_t> SampleDistinct(util::Rng& rng, int count, int universe) {
  std::unordered_set<int32_t> picked;
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(count));
  while (static_cast<int>(out.size()) < count &&
         static_cast<int>(out.size()) < universe) {
    const auto v = static_cast<int32_t>(rng.UniformInt(0, universe - 1));
    if (picked.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace

util::Result<core::Instance> GenerateSynthetic(const SyntheticParams& params) {
  if (params.num_workers < 0 || params.num_tasks < 0) {
    return util::Status::InvalidArgument("negative worker or task count");
  }
  if (params.num_skills <= 0) {
    return util::Status::InvalidArgument("num_skills must be positive");
  }
  if (params.worker_skills.lo < 1) {
    return util::Status::InvalidArgument("workers need at least one skill");
  }
  util::Rng rng(params.seed);

  std::vector<core::Worker> workers;
  workers.reserve(static_cast<size_t>(params.num_workers));
  for (int i = 0; i < params.num_workers; ++i) {
    core::Worker w;
    w.id = i;
    w.location = {rng.UniformDouble(0.0, params.area_side),
                  rng.UniformDouble(0.0, params.area_side)};
    w.start_time = rng.UniformDouble(params.start_time.lo, params.start_time.hi);
    w.wait_time = rng.UniformDouble(params.wait_time.lo, params.wait_time.hi);
    w.velocity = rng.UniformDouble(params.velocity.lo, params.velocity.hi);
    w.max_distance =
        rng.UniformDouble(params.max_distance.lo, params.max_distance.hi);
    const int num_skills = static_cast<int>(
        rng.UniformInt(params.worker_skills.lo, params.worker_skills.hi));
    w.skills = SampleDistinct(rng, num_skills, params.num_skills);
    workers.push_back(std::move(w));
  }

  // Tasks are created on the platform in start-time order; dependencies only
  // point to previously-created tasks (Section V-A), so draw all start times
  // first and generate tasks in ascending start order. This keeps dependency
  // chains temporally ordered — a dependent never expires before its
  // dependencies have even appeared.
  std::vector<double> starts(static_cast<size_t>(params.num_tasks));
  for (double& s : starts) {
    s = rng.UniformDouble(params.start_time.lo, params.start_time.hi);
  }
  std::sort(starts.begin(), starts.end());

  std::vector<core::Task> tasks;
  tasks.reserve(static_cast<size_t>(params.num_tasks));
  // closures[i]: transitive dependency set of task i (maintained closed).
  std::vector<std::vector<core::TaskId>> closures(
      static_cast<size_t>(params.num_tasks));
  for (int i = 0; i < params.num_tasks; ++i) {
    core::Task t;
    t.id = i;
    t.location = {rng.UniformDouble(0.0, params.area_side),
                  rng.UniformDouble(0.0, params.area_side)};
    t.start_time = starts[static_cast<size_t>(i)];
    t.wait_time = rng.UniformDouble(params.wait_time.lo, params.wait_time.hi);
    t.required_skill =
        static_cast<core::SkillId>(rng.UniformInt(0, params.num_skills - 1));

    const int target = static_cast<int>(
        rng.UniformInt(params.dependency_size.lo, params.dependency_size.hi));
    if (i > 0 && target > 0) {
      std::unordered_set<core::TaskId> deps;
      const int lo = params.dependency_locality > 0
                         ? std::max(0, i - params.dependency_locality)
                         : 0;
      // Candidates are unioned together with their own dependency sets so
      // the result stays transitively closed; a candidate whose closure
      // would overshoot the drawn target is skipped, keeping |D_t| ~ U
      // within the configured range as the paper specifies. Bounded draws
      // keep degenerate configurations terminating.
      const int max_draws = 4 * target + 16;
      for (int draw = 0; draw < max_draws &&
                         static_cast<int>(deps.size()) < target;
           ++draw) {
        const auto j = static_cast<core::TaskId>(rng.UniformInt(lo, i - 1));
        if (deps.contains(j)) continue;
        const auto& sub = closures[static_cast<size_t>(j)];
        // Upper bound on the union size; cheap and admissible.
        if (static_cast<int>(deps.size() + 1 + sub.size()) > target) continue;
        deps.insert(j);
        deps.insert(sub.begin(), sub.end());
      }
      closures[static_cast<size_t>(i)].assign(deps.begin(), deps.end());
      std::sort(closures[static_cast<size_t>(i)].begin(),
                closures[static_cast<size_t>(i)].end());
      t.dependencies = closures[static_cast<size_t>(i)];
    }
    tasks.push_back(std::move(t));
  }

  return core::Instance::Create(std::move(workers), std::move(tasks),
                                params.num_skills);
}

}  // namespace dasc::gen
