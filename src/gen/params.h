// Workload generator parameterizations (paper Tables IV and V).
#ifndef DASC_GEN_PARAMS_H_
#define DASC_GEN_PARAMS_H_

#include <cstdint>

namespace dasc::gen {

// Inclusive uniform sampling range.
struct Range {
  double lo = 0.0;
  double hi = 0.0;
};

struct IntRange {
  int lo = 0;
  int hi = 0;
};

// Table V defaults (bold values); all quantities in the unit model space.
struct SyntheticParams {
  uint64_t seed = 42;
  int num_workers = 5000;                 // n
  int num_tasks = 5000;                   // m
  int num_skills = 1500;                  // r
  IntRange dependency_size = {0, 70};     // |D_t| target
  // Dependencies are drawn among the `dependency_locality` most recently
  // created tasks (0 = the whole past, the paper's literal wording). The
  // paper's real-data construction draws dependencies within a task group —
  // i.e., temporally local sets; a locality window keeps the synthetic
  // dependency chains temporally co-feasible under the paper's own
  // start/wait windows. See DESIGN.md §5.
  int dependency_locality = 200;
  IntRange worker_skills = {1, 15};       // |WS_w|
  Range start_time = {0.0, 75.0};         // [st-, st+], workers and tasks
  Range wait_time = {10.0, 15.0};         // [wt-, wt+], workers and tasks
  Range velocity = {0.03, 0.04};          // [v-, v+]
  Range max_distance = {0.3, 0.4};        // [d-, d+]
  double area_side = 0.5;                 // locations uniform in [0, side]^2
};

// Table IV defaults for the Meetup-like workload. Coordinates are
// (longitude, latitude) degrees in the paper's Hong Kong bounding box with
// Euclidean distance on degrees, as in the paper's value ranges.
struct MeetupParams {
  uint64_t seed = 42;
  int num_workers = 3525;   // users extracted from the Hong Kong area
  int num_tasks = 1282;     // events extracted from the Hong Kong area
  int num_groups = 97;      // groups (task groups / events)
  int num_skills = 500;     // tag vocabulary (skills)
  double tag_zipf_exponent = 1.0;    // popularity skew of tags
  IntRange group_tags = {3, 10};     // tag set size per group
  IntRange worker_skills = {1, 6};   // tags per user
  IntRange group_task_deps = {0, 6}; // dependency count target inside a group
  double cluster_stddev = 0.02;      // spatial spread around a group's venue
  // Group venues are Gaussian around the bounding-box center with this
  // spread (the urban-core concentration of real event data); 0 = uniform
  // venues over the whole box.
  double venue_stddev = 0.03;
  // A task group is one event: its tasks are posted together in a burst of
  // this duration after the event's creation time (drawn from start_time).
  double group_burst_spread = 5.0;
  Range start_time = {0.0, 200.0};   // [st-, st+]
  Range wait_time = {3.0, 5.0};      // [wt-, wt+]
  Range velocity = {0.01, 0.015};    // [v-, v+] (paper default [1,1.5]*0.01)
  Range max_distance = {0.03, 0.035};// [d-, d+] (paper default [3,3.5]*0.01)
  // Hong Kong bounding box of the paper (lon 113.843-114.283, lat
  // 22.209-22.609).
  double lon_min = 113.843, lon_max = 114.283;
  double lat_min = 22.209, lat_max = 22.609;
};

}  // namespace dasc::gen

#endif  // DASC_GEN_PARAMS_H_
