// Oracle catalogue for the property-based conformance harness.
//
// An oracle is a named predicate over one generated instance: it runs one or
// more allocators through the normal batch pipeline and checks a property
// the paper (or this codebase's own documentation) promises. Three kinds:
//
//   * structural   — validity of every committed pair (via the disjoint
//                    sim::BatchAuditor re-checker) and determinism of
//                    repeated runs under a fixed seed;
//   * dominance    — score orderings backed by theory: complete DFS is an
//                    upper bound on every allocator, G-G never falls below
//                    its greedy seed (exact-potential monotonicity), and a
//                    converged game equilibrium is within 1/2 of DFS
//                    (Theorem IV.2's price of anarchy);
//   * metamorphic  — transformed instances must produce the same score (and,
//                    where no relabeling is involved, bit-identical
//                    assignments). The transforms are chosen to be
//                    floating-point-exact (see generator.h): reflection /
//                    axis swap, power-of-two scaling with velocity and
//                    travel budget co-scaled, uniform time shift, skill-id
//                    relabeling, and worker/task index relabeling (the last
//                    checked against complete DFS only — heuristics are
//                    legitimately iteration-order-sensitive).
//
// Skip convention: an oracle returns Status::FailedPrecondition when it does
// not apply to the case (instance too large for DFS, search incomplete);
// every other non-OK status is a property violation. The harness counts
// skips separately so a sweep cannot "pass" by skipping everything.
#ifndef DASC_TESTING_ORACLES_H_
#define DASC_TESTING_ORACLES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/batch.h"
#include "core/instance.h"
#include "util/status.h"

namespace dasc::testing {

// Everything an oracle needs to evaluate one case.
struct OracleContext {
  const core::Instance* instance = nullptr;
  // Batch timestamp (the harness evaluates one all-at batch).
  double now = 0.0;
  // Registry names to check. Oracles that compare specific allocators
  // (dominance chain) create those themselves and ignore this list.
  std::vector<std::string> allocators;
  // Allocator seed (registry default 42).
  uint64_t seed = 42;
  // Test-only fault injection: commit the exclusivity-deduplicated pairs
  // WITHOUT the dependency filter (core::SplitPairs valid + invalid), as if
  // the platform forgot the dependency check. The validity oracle must then
  // report a violation on any family where a dependency-oblivious allocator
  // emits a premature pair — this is how the harness proves it can catch
  // real bugs end to end (see ISSUE acceptance criteria).
  bool inject_dependency_bug = false;
  // Test-only fault injection for the incremental candidate view: silently
  // drop one retraction (core::IncrementalCandidateView::InjectStaleCandidate)
  // so a stale edge survives into a published batch. The
  // incremental-candidates-equivalence oracle must then report a mismatch —
  // proof the differential conformance layer catches real staleness bugs.
  bool inject_stale_candidate = false;
  // DFS-backed oracles skip instances with more tasks than this, and skip
  // (not fail) when the search exceeds its budget without completing.
  int dfs_max_tasks = 12;
  double dfs_time_limit_seconds = 2.0;
};

struct Oracle {
  std::string name;         // stable CLI name ("validity", "meta-scale", ...)
  std::string description;  // one line for --list output
  std::function<util::Status(const OracleContext&)> check;
};

// All oracles, in catalogue order.
const std::vector<Oracle>& AllOracles();
std::vector<std::string> AllOracleNames();
// nullptr when unknown.
const Oracle* FindOracle(const std::string& name);

// Runs one registry allocator on `problem` and commits the result the way
// the platform does (core::ValidPairs) — or, with `inject_dependency_bug`,
// with the dependency filter skipped. Returns the committed assignment;
// score is its size. Exposed for the harness, replay, and tests.
util::Result<core::Assignment> RunCommitted(const core::BatchProblem& problem,
                                            const std::string& allocator,
                                            uint64_t seed,
                                            bool inject_dependency_bug);

}  // namespace dasc::testing

#endif  // DASC_TESTING_ORACLES_H_
