#include "testing/generator.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "util/logging.h"

namespace dasc::testing {

namespace {

// Linear interpolation used to turn `tightness` into concrete budgets.
double Lerp(double loose, double tight, double t) {
  return loose + (tight - loose) * t;
}

struct CaseShape {
  int num_workers = 0;
  int num_tasks = 0;
  int num_skills = 0;
};

CaseShape SampleShape(const GenParams& params, util::Rng& rng) {
  CaseShape shape;
  shape.num_workers = std::max(1, params.num_workers.Sample(rng));
  shape.num_tasks = std::max(1, params.num_tasks.Sample(rng));
  shape.num_skills = std::max(1, params.num_skills.Sample(rng));
  return shape;
}

core::Worker SampleWorker(core::WorkerId id, const GenParams& params,
                          int num_skills, util::Rng& rng) {
  core::Worker w;
  w.id = id;
  w.location = {rng.UniformDouble(0.0, params.area_side),
                rng.UniformDouble(0.0, params.area_side)};
  w.start_time = rng.UniformDouble(-params.time_spread, params.time_spread / 4);
  // Loose: the worker outlives every window; tight: it may leave before
  // now = 0 or before late tasks arrive.
  w.wait_time =
      rng.UniformDouble(0.5, 1.5) *
      Lerp(4.0 * params.time_spread, 0.5 * params.time_spread, params.tightness);
  w.velocity = rng.UniformDouble(0.5, 1.5);
  // Loose: the whole area is in reach; tight: only a small disc.
  w.max_distance = rng.UniformDouble(0.5, 1.5) *
                   Lerp(2.0, 0.15, params.tightness) * params.area_side;
  const int count =
      std::min(num_skills, std::max(1, params.worker_skills.Sample(rng)));
  for (int k = 0; k < count; ++k) {
    w.skills.push_back(
        static_cast<core::SkillId>(rng.UniformInt(0, num_skills - 1)));
  }
  return w;
}

core::Task SampleTask(core::TaskId id, const GenParams& params, int num_skills,
                      util::Rng& rng) {
  core::Task t;
  t.id = id;
  t.location = {rng.UniformDouble(0.0, params.area_side),
                rng.UniformDouble(0.0, params.area_side)};
  t.start_time = rng.UniformDouble(-params.time_spread, params.time_spread / 4);
  t.wait_time =
      rng.UniformDouble(0.5, 1.5) *
      Lerp(3.0 * params.time_spread, 0.4 * params.time_spread, params.tightness);
  t.required_skill =
      static_cast<core::SkillId>(rng.UniformInt(0, num_skills - 1));
  return t;
}

std::vector<core::Worker> SampleWorkers(const CaseShape& shape,
                                        const GenParams& params,
                                        util::Rng& rng) {
  std::vector<core::Worker> workers;
  workers.reserve(static_cast<size_t>(shape.num_workers));
  for (int i = 0; i < shape.num_workers; ++i) {
    workers.push_back(SampleWorker(i, params, shape.num_skills, rng));
  }
  return workers;
}

core::Instance Build(std::vector<core::Worker> workers,
                     std::vector<core::Task> tasks, int num_skills) {
  auto instance = core::Instance::Create(std::move(workers), std::move(tasks),
                                         num_skills);
  DASC_CHECK(instance.ok()) << "generator produced an invalid instance: "
                            << instance.status().ToString();
  return std::move(*instance);
}

core::Instance GenerateUniform(const GenParams& params, util::Rng& rng) {
  const CaseShape shape = SampleShape(params, rng);
  std::vector<core::Task> tasks;
  tasks.reserve(static_cast<size_t>(shape.num_tasks));
  for (int i = 0; i < shape.num_tasks; ++i) {
    core::Task t = SampleTask(i, params, shape.num_skills, rng);
    if (i > 0) {
      const int deps = params.direct_deps.Sample(rng);
      for (int k = 0; k < deps; ++k) {
        t.dependencies.push_back(
            static_cast<core::TaskId>(rng.UniformInt(0, i - 1)));
      }
    }
    tasks.push_back(std::move(t));
  }
  return Build(SampleWorkers(shape, params, rng), std::move(tasks),
               shape.num_skills);
}

// Tasks partitioned into maximal-depth chains: task i depends on i - 1
// within its chain. The transitive closure of a chain tail is the whole
// chain, so closures (and the harness's dependency oracles) are exercised at
// the maximum depth the task count allows. Chain links are spatially and
// temporally adjacent so chains are actually servable under tight budgets.
core::Instance GenerateDeepChain(const GenParams& params, util::Rng& rng) {
  const CaseShape shape = SampleShape(params, rng);
  std::vector<core::Task> tasks;
  tasks.reserve(static_cast<size_t>(shape.num_tasks));
  int chain_remaining = 0;
  for (int i = 0; i < shape.num_tasks; ++i) {
    core::Task t = SampleTask(i, params, shape.num_skills, rng);
    if (chain_remaining > 0) {
      t.dependencies.push_back(static_cast<core::TaskId>(i - 1));
      // Keep the chain co-located and co-feasible: next to its parent, with
      // an overlapping window.
      const core::Task& parent = tasks.back();
      t.location.x = std::clamp(
          parent.location.x + rng.UniformDouble(-0.1, 0.1) * params.area_side,
          0.0, params.area_side);
      t.location.y = std::clamp(
          parent.location.y + rng.UniformDouble(-0.1, 0.1) * params.area_side,
          0.0, params.area_side);
      t.start_time = parent.start_time + rng.UniformDouble(0.0, 0.5);
      --chain_remaining;
    } else {
      chain_remaining =
          std::min(shape.num_tasks - i, params.chain_depth.Sample(rng)) - 1;
    }
    tasks.push_back(std::move(t));
  }
  return Build(SampleWorkers(shape, params, rng), std::move(tasks),
               shape.num_skills);
}

// Stacked diamonds: source -> {width middle tasks} -> sink. The sink's
// closure contains the whole motif and every middle task shares the same
// parent and child — the shape where in-batch dependency credit,
// associative-set matching, and the auditor's closure probes disagree first
// when one of them has a bug.
core::Instance GenerateDiamond(const GenParams& params, util::Rng& rng) {
  CaseShape shape = SampleShape(params, rng);
  shape.num_tasks = std::max(shape.num_tasks, 4);
  std::vector<core::Task> tasks;
  tasks.reserve(static_cast<size_t>(shape.num_tasks));
  while (static_cast<int>(tasks.size()) < shape.num_tasks) {
    const int remaining = shape.num_tasks - static_cast<int>(tasks.size());
    if (remaining < 3) {
      // Tail too small for a motif: plain dependency-free tasks.
      tasks.push_back(SampleTask(static_cast<core::TaskId>(tasks.size()),
                                 params, shape.num_skills, rng));
      continue;
    }
    const int width =
        std::min(remaining - 2, std::max(2, params.diamond_width.Sample(rng)));
    const core::TaskId source = static_cast<core::TaskId>(tasks.size());
    core::Task src = SampleTask(source, params, shape.num_skills, rng);
    const geo::Point center = src.location;
    const double anchor_start = src.start_time;
    tasks.push_back(std::move(src));
    for (int k = 0; k < width; ++k) {
      core::Task mid = SampleTask(static_cast<core::TaskId>(tasks.size()),
                                  params, shape.num_skills, rng);
      mid.dependencies.push_back(source);
      mid.location.x = std::clamp(
          center.x + rng.UniformDouble(-0.15, 0.15) * params.area_side, 0.0,
          params.area_side);
      mid.location.y = std::clamp(
          center.y + rng.UniformDouble(-0.15, 0.15) * params.area_side, 0.0,
          params.area_side);
      mid.start_time = anchor_start + rng.UniformDouble(0.0, 0.5);
      tasks.push_back(std::move(mid));
    }
    core::Task sink = SampleTask(static_cast<core::TaskId>(tasks.size()),
                                 params, shape.num_skills, rng);
    for (int k = 0; k < width; ++k) {
      sink.dependencies.push_back(source + 1 + k);
    }
    sink.location = center;
    sink.start_time = anchor_start + rng.UniformDouble(0.0, 1.0);
    tasks.push_back(std::move(sink));
  }
  return Build(SampleWorkers(shape, params, rng), std::move(tasks),
               shape.num_skills);
}

// A market where skill supply is deliberately broken: the top third of the
// skill universe is "starved" (no worker ever practices it) while a random
// subset of tasks requires exactly those skills. Allocators must leave them
// unserved — any assignment touching a starved task is a skill-constraint
// violation the validity oracle catches.
core::Instance GenerateSkillStarved(const GenParams& params, util::Rng& rng) {
  CaseShape shape = SampleShape(params, rng);
  shape.num_skills = std::max(shape.num_skills, 2);
  const int starved_from = std::max(1, (2 * shape.num_skills) / 3);
  std::vector<core::Worker> workers;
  workers.reserve(static_cast<size_t>(shape.num_workers));
  for (int i = 0; i < shape.num_workers; ++i) {
    core::Worker w = SampleWorker(i, params, shape.num_skills, rng);
    for (core::SkillId& s : w.skills) {
      // Remap practiced skills into the non-starved prefix [0, starved_from).
      s = s % starved_from;
    }
    workers.push_back(std::move(w));
  }
  std::vector<core::Task> tasks;
  tasks.reserve(static_cast<size_t>(shape.num_tasks));
  for (int i = 0; i < shape.num_tasks; ++i) {
    core::Task t = SampleTask(i, params, shape.num_skills, rng);
    if (rng.Bernoulli(0.4)) {
      // A starved task; dependents of starved tasks can never be unlocked.
      t.required_skill = static_cast<core::SkillId>(
          rng.UniformInt(starved_from, shape.num_skills - 1));
    } else {
      t.required_skill =
          static_cast<core::SkillId>(rng.UniformInt(0, starved_from - 1));
    }
    if (i > 0 && rng.Bernoulli(0.5)) {
      t.dependencies.push_back(
          static_cast<core::TaskId>(rng.UniformInt(0, i - 1)));
    }
    tasks.push_back(std::move(t));
  }
  return Build(std::move(workers), std::move(tasks), shape.num_skills);
}

// Every task is anchored to one worker and placed so that, for that worker,
// either the travel-budget or the arrival-deadline constraint holds or fails
// by a relative kKnifeEdgeMargin — far outside floating-point re-rounding
// noise, but exactly where a >= / > confusion in feasibility code flips the
// answer. Anchors use start_time = 0 on both sides so the margin applies to
// the constraint under test rather than the window checks.
core::Instance GenerateKnifeEdge(const GenParams& params, util::Rng& rng) {
  const CaseShape shape = SampleShape(params, rng);
  std::vector<core::Worker> workers;
  workers.reserve(static_cast<size_t>(shape.num_workers));
  for (int i = 0; i < shape.num_workers; ++i) {
    core::Worker w = SampleWorker(i, params, shape.num_skills, rng);
    w.start_time = 0.0;
    w.wait_time = 4.0 * params.time_spread;
    workers.push_back(std::move(w));
  }
  std::vector<core::Task> tasks;
  tasks.reserve(static_cast<size_t>(shape.num_tasks));
  for (int i = 0; i < shape.num_tasks; ++i) {
    core::Task t = SampleTask(i, params, shape.num_skills, rng);
    t.start_time = 0.0;
    core::Worker& anchor =
        workers[static_cast<size_t>(rng.UniformInt(0, shape.num_workers - 1))];
    // Give the anchor the skill so the knife-edge constraint is the binding
    // one for at least one worker.
    t.required_skill = anchor.skills[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(anchor.skills.size()) - 1))];
    const double radius =
        anchor.max_distance * rng.UniformDouble(0.6, 0.98);
    const double angle = rng.UniformDouble(0.0, 2.0 * M_PI);
    t.location = {anchor.location.x + radius * std::cos(angle),
                  anchor.location.y + radius * std::sin(angle)};
    // Recompute the distance exactly as feasibility.cc will see it, then set
    // the boundary a relative margin to either side.
    const double dist = geo::EuclideanDistance(anchor.location, t.location);
    const double travel = dist / anchor.velocity;
    const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    if (rng.Bernoulli(0.5)) {
      // Arrival-deadline knife: expiry = travel * (1 ± margin).
      t.wait_time = travel * (1.0 + sign * kKnifeEdgeMargin);
    } else {
      // Travel-budget knife: shrink the anchor's budget to dist * (1 ± m).
      anchor.max_distance = dist * (1.0 + sign * kKnifeEdgeMargin);
      t.wait_time = 2.0 * travel;  // deadline comfortably loose
    }
    if (i > 0 && rng.Bernoulli(0.3)) {
      t.dependencies.push_back(
          static_cast<core::TaskId>(rng.UniformInt(0, i - 1)));
    }
    tasks.push_back(std::move(t));
  }
  return Build(std::move(workers), std::move(tasks), shape.num_skills);
}

}  // namespace

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kUniform:
      return "uniform";
    case Family::kDeepChain:
      return "deep-chain";
    case Family::kDiamond:
      return "diamond";
    case Family::kSkillStarved:
      return "skill-starved";
    case Family::kKnifeEdge:
      return "knife-edge";
  }
  DASC_CHECK(false) << "unknown Family";
  return "?";
}

bool FamilyFromName(const std::string& name, Family* family) {
  for (Family f : AllFamilies()) {
    if (name == FamilyName(f)) {
      *family = f;
      return true;
    }
  }
  return false;
}

std::vector<Family> AllFamilies() {
  return {Family::kUniform, Family::kDeepChain, Family::kDiamond,
          Family::kSkillStarved, Family::kKnifeEdge};
}

core::Instance GenerateCase(Family family, const GenParams& params,
                            uint64_t case_seed) {
  // Fold the family into the stream so the same case_seed yields unrelated
  // instances across families.
  util::Rng rng(case_seed * 0x9e3779b97f4a7c15ULL +
                static_cast<uint64_t>(family) + 1);
  switch (family) {
    case Family::kUniform:
      return GenerateUniform(params, rng);
    case Family::kDeepChain:
      return GenerateDeepChain(params, rng);
    case Family::kDiamond:
      return GenerateDiamond(params, rng);
    case Family::kSkillStarved:
      return GenerateSkillStarved(params, rng);
    case Family::kKnifeEdge:
      return GenerateKnifeEdge(params, rng);
  }
  DASC_CHECK(false) << "unknown Family";
  return GenerateUniform(params, rng);
}

}  // namespace dasc::testing
