// Stress harness: sweeps (family x seed) generated cases through the oracle
// catalogue in parallel, shrinks the first failure of each (family, oracle)
// group, and writes self-contained repro files.
//
// Repro format: the standard dasc-instance v1 text (io::WriteInstance) plus
// trailing comment lines
//
//   # dasc-stress-repro oracle=<name> family=<name> case_seed=<n>
//   # dasc-stress-repro allocators=<a,b,c> seed=<n> inject_dep_bug=<0|1>
//   # dasc-stress-repro message=<original failure message>
//
// ReadInstance ignores comments, so the file loads as a normal instance in
// every tool; ReplayRepro additionally parses the metadata and re-runs the
// recorded oracle against the recorded configuration.
#ifndef DASC_TESTING_HARNESS_H_
#define DASC_TESTING_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/generator.h"
#include "testing/oracles.h"
#include "testing/shrink.h"
#include "util/status.h"

namespace dasc::testing {

struct StressOptions {
  // Seeds per family: case_seed = base_seed + i, i in [0, seeds).
  int seeds = 200;
  uint64_t base_seed = 1;
  std::vector<Family> families = AllFamilies();
  // Oracle names to run (AllOracleNames() when empty).
  std::vector<std::string> oracles;
  // Allocator registry names the oracles sweep; empty = every registered
  // name except "dfs" (the DFS-backed oracles budget their own search).
  std::vector<std::string> allocators;
  GenParams gen;
  uint64_t allocator_seed = 42;
  double now = 0.0;
  int dfs_max_tasks = 12;
  double dfs_time_limit_seconds = 2.0;
  // Fault injection forwarded to OracleContext (see oracles.h).
  bool inject_dependency_bug = false;
  bool inject_stale_candidate = false;
  // Shrink failures and write repro files under repro_dir.
  bool shrink = true;
  ShrinkOptions shrink_options;
  std::string repro_dir = "tests/repros";
  // Stop scheduling new cases once this many failures were collected.
  int max_failures = 8;
};

struct StressFailure {
  Family family = Family::kUniform;
  uint64_t case_seed = 0;
  std::string oracle;
  std::string message;  // status of the original failing case
  // Populated when shrinking ran:
  int original_tasks = 0;
  int original_workers = 0;
  int shrunk_tasks = 0;
  int shrunk_workers = 0;
  std::string repro_path;  // empty when no repro file was written
};

struct StressReport {
  int64_t cases = 0;   // generated (family, seed) cases
  int64_t checks = 0;  // oracle evaluations that applied (OK or failed)
  int64_t skips = 0;   // oracle evaluations skipped via FailedPrecondition
  std::vector<StressFailure> failures;  // sorted (family, oracle, seed)
  bool ok() const { return failures.empty(); }
};

// Runs the sweep on the global thread pool (util::ParallelFor, grain 1).
// Deterministic for a fixed option set at every thread count: case results
// are keyed by (family, seed) and failures are sorted afterwards.
StressReport RunStress(const StressOptions& options);

// Loads a repro file written by RunStress and re-runs its recorded oracle.
// Returns the oracle's status: non-OK means the failure still reproduces.
// I/O or metadata problems surface as InvalidArgument/NotFound.
util::Status ReplayRepro(const std::string& path);

}  // namespace dasc::testing

#endif  // DASC_TESTING_HARNESS_H_
