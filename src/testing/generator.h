// Random-instance generator DSL for the property-based conformance harness
// (DESIGN.md §12).
//
// The paper's synthetic recipe (gen/synthetic.h) reproduces Table V; this
// generator instead aims for *coverage*: small instances with tunable
// distributions over skills, DAG shape, and spatio-temporal tightness, plus
// pathological families that hand-written fixtures rarely hit — deep
// dependency chains, diamond motifs, skill-starved markets, and
// deadline-knife-edge geometry where every pair sits a hair's width from the
// feasibility boundary.
//
// Determinism contract: GenerateCase(family, params, case_seed) is a pure
// function of its arguments — same inputs, bit-identical instance — so a
// failing case is reproducible from its (family, seed) coordinates alone,
// before the shrinker even writes a repro file.
//
// Knife-edge margins are relative (kKnifeEdgeMargin = 1e-6): wide enough
// that the metamorphic transforms of oracles.h (reflection, axis swap,
// power-of-two scaling, uniform time shift) cannot flip a feasibility
// comparison through floating-point re-rounding (~1e-16 relative), narrow
// enough to catch off-by-one-comparison bugs (>= vs >) in feasibility code.
#ifndef DASC_TESTING_GENERATOR_H_
#define DASC_TESTING_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "util/rng.h"

namespace dasc::testing {

// Pathological instance families on top of the uniform baseline.
enum class Family {
  kUniform = 0,      // uniform geometry, uniform random DAG
  kDeepChain,        // long dependency chains (worst case for closures)
  kDiamond,          // stacked diamond motifs: src -> {mid...} -> sink
  kSkillStarved,     // tasks requiring skills no worker practices
  kKnifeEdge,        // every pair within ±1e-6 of a feasibility boundary
};

inline constexpr int kNumFamilies = 5;
inline constexpr double kKnifeEdgeMargin = 1e-6;

// Stable lowercase name ("uniform", "deep-chain", ...).
const char* FamilyName(Family family);
// Inverse of FamilyName; false on unknown names.
bool FamilyFromName(const std::string& name, Family* family);
// All families, in enum order.
std::vector<Family> AllFamilies();

// Inclusive integer sampling range.
struct CountRange {
  int lo = 0;
  int hi = 0;
  int Sample(util::Rng& rng) const {
    return static_cast<int>(rng.UniformInt(lo, hi));
  }
};

// Tunable distributions. Defaults keep instances small enough for the
// DFS-backed oracles while still exercising every constraint.
struct GenParams {
  CountRange num_workers = {3, 9};
  CountRange num_tasks = {4, 14};
  CountRange num_skills = {1, 5};
  CountRange worker_skills = {1, 3};
  // Uniform family: per-task direct-dependency target.
  CountRange direct_deps = {0, 3};
  // Deep-chain family: chain length (clamped to the task count).
  CountRange chain_depth = {3, 10};
  // Diamond family: middle-layer width of each motif.
  CountRange diamond_width = {2, 4};
  // Spatio-temporal tightness in [0, 1]: 0 = travel budgets and windows
  // comfortably cover the area, 1 = most pairs barely (in)feasible.
  double tightness = 0.4;
  double area_side = 1.0;
  // Start times are drawn in [-time_spread, time_spread / 4] around the
  // harness's fixed batch timestamp now = 0, so instances mix live, expired,
  // and not-yet-arrived parties.
  double time_spread = 8.0;
};

// Deterministic random instance for one stress case. Always valid
// (Instance::Create checked).
core::Instance GenerateCase(Family family, const GenParams& params,
                            uint64_t case_seed);

}  // namespace dasc::testing

#endif  // DASC_TESTING_GENERATOR_H_
