#include "testing/shrink.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "testing/instance_edit.h"
#include "util/logging.h"

namespace dasc::testing {
namespace {

// Canonical "non-binding" values the relaxation pass rewrites constraints
// to. Idempotent by construction (a second application is a no-op), which is
// what keeps the fixpoint loop terminating.
constexpr double kLooseWait = 1e6;
constexpr double kLooseDistance = 1e6;

class Shrinker {
 public:
  Shrinker(const core::Instance& failing, const FailPredicate& still_fails,
           const ShrinkOptions& options)
      : parts_(PartsOf(failing)), still_fails_(still_fails),
        options_(options) {}

  ShrinkResult Run(const core::Instance& failing) {
    ShrinkResult result{failing, 0, 0};
    ++evals_;
    if (!still_fails_(failing)) {
      DASC_LOG(WARNING)
          << "shrink: original instance does not fail its own predicate; "
             "returning it unshrunk";
      result.predicate_evals = evals_;
      return result;
    }
    best_ = failing;
    while (!Exhausted()) {
      bool progress = false;
      progress |= RemoveChunksPass(/*tasks=*/true);
      progress |= RemoveChunksPass(/*tasks=*/false);
      progress |= PruneDepsPass();
      progress |= RelaxPass();
      ++passes_;
      if (!progress) break;
    }
    result.instance = *best_;
    result.predicate_evals = evals_;
    result.passes = passes_;
    return result;
  }

 private:
  bool Exhausted() const { return evals_ >= options_.max_predicate_evals; }

  // Accepts `candidate` as the new current state iff it rebuilds into a
  // valid instance that still fails. Invalid rebuilds (e.g. zero workers
  // when the model forbids it) are silently rejected without spending an
  // evaluation.
  bool TryAccept(InstanceParts candidate) {
    if (Exhausted()) return false;
    util::Result<core::Instance> built = BuildParts(candidate);
    if (!built.ok()) return false;
    ++evals_;
    if (!still_fails_(*built)) return false;
    parts_ = std::move(candidate);
    best_ = std::move(*built);
    return true;
  }

  // ddmin-style chunk removal over tasks (or workers): try dropping aligned
  // chunks from half the population down to single elements, restarting from
  // coarse granularity after every successful removal.
  bool RemoveChunksPass(bool tasks) {
    bool any = false;
    bool removed = true;
    while (removed && !Exhausted()) {
      removed = false;
      const int n = static_cast<int>(tasks ? parts_.tasks.size()
                                           : parts_.workers.size());
      if (n == 0) break;
      for (int chunk = std::max(1, n / 2); chunk >= 1 && !removed;
           chunk /= 2) {
        for (int start = 0; start < n && !removed; start += chunk) {
          std::vector<uint8_t> drop(static_cast<size_t>(n), 0);
          for (int i = start; i < std::min(n, start + chunk); ++i) {
            drop[static_cast<size_t>(i)] = 1;
          }
          InstanceParts candidate =
              tasks ? WithoutTasks(parts_, drop) : WithoutWorkers(parts_, drop);
          removed = TryAccept(std::move(candidate));
        }
        if (chunk == 1) break;
      }
      any |= removed;
    }
    return any;
  }

  // Try deleting dependency edges one at a time.
  bool PruneDepsPass() {
    bool any = false;
    bool progress = true;
    while (progress && !Exhausted()) {
      progress = false;
      for (size_t ti = 0; ti < parts_.tasks.size() && !Exhausted(); ++ti) {
        for (size_t di = 0; di < parts_.tasks[ti].dependencies.size(); ++di) {
          InstanceParts candidate = parts_;
          auto& deps = candidate.tasks[ti].dependencies;
          deps.erase(deps.begin() + static_cast<long>(di));
          if (TryAccept(std::move(candidate))) {
            progress = true;
            any = true;
            break;  // indices shifted; the outer while re-sweeps this task
          }
        }
      }
    }
    return any;
  }

  // Rewrite one constraint at a time to a canonical non-binding value; keep
  // the rewrite only if the failure survives. What remains binding in the
  // final repro is exactly what the bug needs.
  bool RelaxPass() {
    bool any = false;
    for (size_t i = 0; i < parts_.tasks.size() && !Exhausted(); ++i) {
      any |= RelaxField(parts_.tasks[i].start_time, 0.0, [&](InstanceParts& p) {
        p.tasks[i].start_time = 0.0;
      });
      any |= RelaxField(parts_.tasks[i].wait_time, kLooseWait,
                        [&](InstanceParts& p) {
                          p.tasks[i].wait_time = kLooseWait;
                        });
    }
    for (size_t i = 0; i < parts_.workers.size() && !Exhausted(); ++i) {
      any |= RelaxField(parts_.workers[i].start_time, 0.0,
                        [&](InstanceParts& p) {
                          p.workers[i].start_time = 0.0;
                        });
      any |= RelaxField(parts_.workers[i].wait_time, kLooseWait,
                        [&](InstanceParts& p) {
                          p.workers[i].wait_time = kLooseWait;
                        });
      any |= RelaxField(parts_.workers[i].max_distance, kLooseDistance,
                        [&](InstanceParts& p) {
                          p.workers[i].max_distance = kLooseDistance;
                        });
      any |= RelaxField(parts_.workers[i].velocity, 1.0, [&](InstanceParts& p) {
        p.workers[i].velocity = 1.0;
      });
    }
    any |= CollapseSkills();
    any |= TightenNumSkills();
    return any;
  }

  template <typename Fn>
  bool RelaxField(double current, double target, Fn mutate) {
    if (current == target) return false;
    InstanceParts candidate = parts_;
    mutate(candidate);
    return TryAccept(std::move(candidate));
  }

  // Try the strongest skill simplification: one skill for everyone.
  bool CollapseSkills() {
    if (parts_.num_skills == 1) return false;
    InstanceParts candidate = parts_;
    candidate.num_skills = 1;
    for (core::Worker& w : candidate.workers) w.skills = {0};
    for (core::Task& t : candidate.tasks) t.required_skill = 0;
    return TryAccept(std::move(candidate));
  }

  // Drop unused trailing skill ids (pure bookkeeping; cannot change
  // behavior, so it is applied without spending an evaluation — but only
  // when the rebuild stays valid, which it always is here).
  bool TightenNumSkills() {
    core::SkillId max_used = 0;
    for (const core::Worker& w : parts_.workers) {
      for (core::SkillId s : w.skills) max_used = std::max(max_used, s);
    }
    for (const core::Task& t : parts_.tasks) {
      max_used = std::max(max_used, t.required_skill);
    }
    const int tight = static_cast<int>(max_used) + 1;
    if (tight >= parts_.num_skills) return false;
    InstanceParts candidate = parts_;
    candidate.num_skills = tight;
    util::Result<core::Instance> built = BuildParts(candidate);
    if (!built.ok()) return false;
    parts_ = std::move(candidate);
    best_ = std::move(*built);
    return true;
  }

  InstanceParts parts_;
  std::optional<core::Instance> best_;
  const FailPredicate& still_fails_;
  const ShrinkOptions& options_;
  int evals_ = 0;
  int passes_ = 0;
};

}  // namespace

ShrinkResult Shrink(const core::Instance& failing,
                    const FailPredicate& still_fails,
                    const ShrinkOptions& options) {
  Shrinker shrinker(failing, still_fails, options);
  return shrinker.Run(failing);
}

}  // namespace dasc::testing
