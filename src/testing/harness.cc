#include "testing/harness.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <tuple>
#include <utility>

#include "algo/registry.h"
#include "io/instance_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace dasc::testing {
namespace {

constexpr char kReproTag[] = "# dasc-stress-repro ";

std::string FmtDouble(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ',';
    out += n;
  }
  return out;
}

std::vector<std::string> SplitNames(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream is(csv);
  while (std::getline(is, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

std::vector<std::string> DefaultAllocators() {
  std::vector<std::string> names = algo::KnownAllocatorNames();
  names.erase(std::remove(names.begin(), names.end(), "dfs"), names.end());
  return names;
}

OracleContext MakeContext(const StressOptions& options,
                          const core::Instance& instance,
                          const std::vector<std::string>& allocators) {
  OracleContext ctx;
  ctx.instance = &instance;
  ctx.now = options.now;
  ctx.allocators = allocators;
  ctx.seed = options.allocator_seed;
  ctx.inject_dependency_bug = options.inject_dependency_bug;
  ctx.inject_stale_candidate = options.inject_stale_candidate;
  ctx.dfs_max_tasks = options.dfs_max_tasks;
  ctx.dfs_time_limit_seconds = options.dfs_time_limit_seconds;
  return ctx;
}

// True iff `status` is a property violation (as opposed to OK or a skip).
bool IsViolation(const util::Status& status) {
  return !status.ok() &&
         status.code() != util::StatusCode::kFailedPrecondition;
}

std::string ReproFileName(const StressFailure& failure) {
  return std::string("repro-") + FamilyName(failure.family) + "-" +
         failure.oracle + "-seed" + std::to_string(failure.case_seed) + ".txt";
}

// Writes instance + metadata; returns the path, or empty on I/O failure.
std::string WriteRepro(const StressOptions& options,
                       const StressFailure& failure,
                       const core::Instance& shrunk,
                       const std::vector<std::string>& allocators) {
  std::error_code ec;
  std::filesystem::create_directories(options.repro_dir, ec);
  if (ec) {
    DASC_LOG(WARNING) << "stress: cannot create repro dir '"
                      << options.repro_dir << "': " << ec.message();
    return "";
  }
  const std::string path =
      (std::filesystem::path(options.repro_dir) / ReproFileName(failure))
          .string();
  std::ofstream out(path);
  if (!out) {
    DASC_LOG(WARNING) << "stress: cannot open repro file '" << path << "'";
    return "";
  }
  io::WriteInstance(shrunk, out);
  out << kReproTag << "oracle=" << failure.oracle
      << " family=" << FamilyName(failure.family)
      << " case_seed=" << failure.case_seed << "\n";
  out << kReproTag << "allocators=" << JoinNames(allocators)
      << " seed=" << options.allocator_seed
      << " inject_dep_bug=" << (options.inject_dependency_bug ? 1 : 0)
      << " inject_stale_candidate=" << (options.inject_stale_candidate ? 1 : 0)
      << " now=" << FmtDouble(options.now) << "\n";
  out << kReproTag << "message=" << failure.message << "\n";
  out.flush();
  if (!out) {
    DASC_LOG(WARNING) << "stress: short write to repro file '" << path << "'";
    return "";
  }
  return path;
}

}  // namespace

StressReport RunStress(const StressOptions& options) {
  const std::vector<std::string> allocators =
      options.allocators.empty() ? DefaultAllocators() : options.allocators;
  std::vector<const Oracle*> oracles;
  const std::vector<std::string> oracle_names =
      options.oracles.empty() ? AllOracleNames() : options.oracles;
  for (const std::string& name : oracle_names) {
    const Oracle* oracle = FindOracle(name);
    DASC_CHECK(oracle != nullptr) << "unknown oracle '" << name << "'";
    oracles.push_back(oracle);
  }

  struct Case {
    Family family;
    uint64_t seed;
  };
  std::vector<Case> cases;
  for (Family family : options.families) {
    for (int i = 0; i < options.seeds; ++i) {
      cases.push_back({family, options.base_seed + static_cast<uint64_t>(i)});
    }
  }

  StressReport report;
  std::mutex mu;
  std::atomic<int> failure_count{0};
  util::ParallelFor(
      0, static_cast<int64_t>(cases.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end) {
        int64_t local_cases = 0, local_checks = 0, local_skips = 0;
        std::vector<StressFailure> local_failures;
        for (int64_t i = begin; i < end; ++i) {
          // Best-effort early stop once enough failures were collected; the
          // failure list is sorted afterwards, so a passing sweep is
          // bit-deterministic at every thread count.
          if (failure_count.load(std::memory_order_relaxed) >=
              options.max_failures) {
            break;
          }
          const Case& c = cases[static_cast<size_t>(i)];
          const core::Instance instance =
              GenerateCase(c.family, options.gen, c.seed);
          const OracleContext ctx =
              MakeContext(options, instance, allocators);
          ++local_cases;
          for (const Oracle* oracle : oracles) {
            const util::Status status = oracle->check(ctx);
            if (status.ok()) {
              ++local_checks;
            } else if (status.code() ==
                       util::StatusCode::kFailedPrecondition) {
              ++local_skips;
            } else {
              ++local_checks;
              StressFailure failure;
              failure.family = c.family;
              failure.case_seed = c.seed;
              failure.oracle = oracle->name;
              failure.message = status.message();
              failure.original_tasks = instance.num_tasks();
              failure.original_workers = instance.num_workers();
              local_failures.push_back(std::move(failure));
              failure_count.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        report.cases += local_cases;
        report.checks += local_checks;
        report.skips += local_skips;
        for (StressFailure& f : local_failures) {
          report.failures.push_back(std::move(f));
        }
      });

  std::sort(report.failures.begin(), report.failures.end(),
            [](const StressFailure& a, const StressFailure& b) {
              return std::tie(a.family, a.oracle, a.case_seed) <
                     std::tie(b.family, b.oracle, b.case_seed);
            });

  if (!options.shrink || report.failures.empty()) return report;

  // Shrink (serially — the predicate itself may run allocators in parallel)
  // the first failure of each (family, oracle) group; later failures of the
  // same group are almost always the same bug.
  std::string last_group;
  for (StressFailure& failure : report.failures) {
    const std::string group =
        std::string(FamilyName(failure.family)) + "/" + failure.oracle;
    if (group == last_group) continue;
    last_group = group;
    const Oracle* oracle = FindOracle(failure.oracle);
    const core::Instance original =
        GenerateCase(failure.family, options.gen, failure.case_seed);
    const FailPredicate still_fails = [&](const core::Instance& candidate) {
      const OracleContext ctx = MakeContext(options, candidate, allocators);
      return IsViolation(oracle->check(ctx));
    };
    const ShrinkResult shrunk =
        Shrink(original, still_fails, options.shrink_options);
    failure.shrunk_tasks = shrunk.instance.num_tasks();
    failure.shrunk_workers = shrunk.instance.num_workers();
    failure.repro_path =
        WriteRepro(options, failure, shrunk.instance, allocators);
  }
  return report;
}

util::Status ReplayRepro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open repro file '" + path + "'");
  }
  std::string oracle_name, allocators_csv, message;
  uint64_t seed = 42;
  bool inject = false;
  bool inject_stale = false;
  double now = 0.0;
  bool saw_meta = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(kReproTag, 0) != 0) continue;
    saw_meta = true;
    const std::string body = line.substr(sizeof(kReproTag) - 1);
    if (body.rfind("message=", 0) == 0) {
      message = body.substr(8);
      continue;
    }
    std::istringstream tokens(body);
    std::string token;
    while (tokens >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "oracle") {
        oracle_name = value;
      } else if (key == "allocators") {
        allocators_csv = value;
      } else if (key == "seed") {
        seed = std::stoull(value);
      } else if (key == "inject_dep_bug") {
        inject = (value == "1");
      } else if (key == "inject_stale_candidate") {
        inject_stale = (value == "1");
      } else if (key == "now") {
        now = std::stod(value);
      }
    }
  }
  if (!saw_meta || oracle_name.empty()) {
    return util::Status::InvalidArgument(
        "'" + path + "' carries no '# dasc-stress-repro' metadata");
  }
  const Oracle* oracle = FindOracle(oracle_name);
  if (oracle == nullptr) {
    return util::Status::InvalidArgument("repro names unknown oracle '" +
                                         oracle_name + "'");
  }
  util::Result<core::Instance> instance = io::ReadInstanceFile(path);
  if (!instance.ok()) return instance.status();

  OracleContext ctx;
  ctx.instance = &*instance;
  ctx.now = now;
  ctx.allocators =
      allocators_csv.empty() ? DefaultAllocators() : SplitNames(allocators_csv);
  ctx.seed = seed;
  ctx.inject_dependency_bug = inject;
  ctx.inject_stale_candidate = inject_stale;
  return oracle->check(ctx);
}

}  // namespace dasc::testing
