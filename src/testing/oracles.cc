#include "testing/oracles.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/registry.h"
#include "sim/audit.h"
#include "sim/simulator.h"
#include "testing/instance_edit.h"

namespace dasc::testing {
namespace {

using core::Assignment;
using core::BatchProblem;
using core::Instance;
using util::Result;
using util::Status;

// Uniform shift applied by the meta-time-shift oracle. Any value works in
// exact arithmetic; empirically the knife-edge family's 1e-6 relative
// margins dwarf the ~1e-16 re-association error of (t + delta) + wait vs
// (t + wait) + delta, so the shifted comparisons never flip.
constexpr double kTimeShiftDelta = 3.0;

std::string Fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::vector<std::pair<core::WorkerId, core::TaskId>> SortedPairs(
    const Assignment& a) {
  auto pairs = a.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

Result<int> CommittedScore(const BatchProblem& problem,
                           const std::string& allocator,
                           const OracleContext& ctx) {
  Result<Assignment> committed =
      RunCommitted(problem, allocator, ctx.seed, ctx.inject_dependency_bug);
  if (!committed.ok()) return committed.status();
  return committed->size();
}

// ---------------------------------------------------------------------------
// Structural oracles.
// ---------------------------------------------------------------------------

// Every committed pair must survive the auditor's independent re-validation
// of all four constraints, and the committed count must respect the
// dependency-relaxed upper bound. This is the oracle the injected dependency
// bug trips, and the one the shrinker usually minimizes against.
Status CheckValidity(const OracleContext& ctx) {
  BatchProblem problem = BatchProblem::AllAt(*ctx.instance, ctx.now);
  for (const std::string& name : ctx.allocators) {
    Result<Assignment> committed =
        RunCommitted(problem, name, ctx.seed, ctx.inject_dependency_bug);
    if (!committed.ok()) return committed.status();
    sim::BatchAuditor auditor(sim::AuditOptions{
        .fail_hard = false, .closure_feasibility_filter = true});
    const sim::BatchAudit audit =
        auditor.AuditBatch(problem, *committed, /*batch_seq=*/0);
    if (audit.violations > 0) {
      return Status::Internal(name + ": " + std::to_string(audit.violations) +
                              " constraint violation(s); first: " +
                              audit.first_violation);
    }
    if (audit.achieved > audit.upper_bound) {
      return Status::Internal(
          name + ": achieved " + std::to_string(audit.achieved) +
          " exceeds relaxed upper bound " + std::to_string(audit.upper_bound));
    }
  }
  return Status::OK();
}

// Same seed, fresh allocator, fresh candidate cache => bit-identical raw
// assignment (registry allocators are deterministic functions of
// (problem, seed), including the "random" baseline).
Status CheckDeterminism(const OracleContext& ctx) {
  for (const std::string& name : ctx.allocators) {
    BatchProblem p1 = BatchProblem::AllAt(*ctx.instance, ctx.now);
    BatchProblem p2 = BatchProblem::AllAt(*ctx.instance, ctx.now);
    Result<Assignment> a1 =
        RunCommitted(p1, name, ctx.seed, ctx.inject_dependency_bug);
    if (!a1.ok()) return a1.status();
    Result<Assignment> a2 =
        RunCommitted(p2, name, ctx.seed, ctx.inject_dependency_bug);
    if (!a2.ok()) return a2.status();
    if (a1->pairs() != a2->pairs()) {
      return Status::Internal(name + ": two runs with seed " +
                              std::to_string(ctx.seed) +
                              " produced different assignments (" +
                              std::to_string(a1->size()) + " vs " +
                              std::to_string(a2->size()) + " pairs)");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Dominance oracles (DFS-backed ones skip large / incomplete searches).
// ---------------------------------------------------------------------------

Result<int> CompleteDfsScore(const OracleContext& ctx,
                             const BatchProblem& problem) {
  if (ctx.instance->num_tasks() > ctx.dfs_max_tasks) {
    return Status::FailedPrecondition(
        "skip: " + std::to_string(ctx.instance->num_tasks()) +
        " tasks exceed dfs_max_tasks=" + std::to_string(ctx.dfs_max_tasks));
  }
  algo::ExactAllocator dfs(algo::ExactOptions{
      .prune = true,
      .warm_start = true,
      .time_limit_seconds = ctx.dfs_time_limit_seconds});
  Assignment raw = dfs.Allocate(problem);
  if (!dfs.last_run_complete()) {
    return Status::FailedPrecondition("skip: DFS hit its " +
                                      Fmt(ctx.dfs_time_limit_seconds) +
                                      " s budget without completing");
  }
  return core::ValidPairs(problem, raw).size();
}

// Complete DFS is the batch optimum, so no allocator's committed valid-pair
// count may exceed it. (Holds even under bug injection: ValidScore of any
// assignment is still <= OPT, and the injected invalid pairs are the
// validity oracle's business, not this one's — we score ValidPairs here.)
Status CheckDfsDominance(const OracleContext& ctx) {
  BatchProblem problem = BatchProblem::AllAt(*ctx.instance, ctx.now);
  Result<int> opt = CompleteDfsScore(ctx, problem);
  if (!opt.ok()) return opt.status();
  for (const std::string& name : ctx.allocators) {
    Result<Assignment> raw = RunCommitted(problem, name, ctx.seed,
                                          /*inject_dependency_bug=*/false);
    if (!raw.ok()) return raw.status();
    const int score = core::ValidPairs(problem, *raw).size();
    if (score > *opt) {
      return Status::Internal(name + ": score " + std::to_string(score) +
                              " exceeds complete DFS optimum " +
                              std::to_string(*opt));
    }
  }
  return Status::OK();
}

// G-G best-responds from the greedy profile on an exact potential
// (Sum(M) itself under the marginal utility variant), so it can never score
// below the greedy seed (algo/game.h). No DFS involved — runs at any size.
Status CheckGgSeedMonotone(const OracleContext& ctx) {
  BatchProblem problem = BatchProblem::AllAt(*ctx.instance, ctx.now);
  Result<int> gg = CommittedScore(problem, "gg", ctx);
  if (!gg.ok()) return gg.status();
  Result<int> greedy = CommittedScore(problem, "greedy", ctx);
  if (!greedy.ok()) return greedy.status();
  if (*gg < *greedy) {
    return Status::Internal("gg scored " + std::to_string(*gg) +
                            " below its greedy seed " +
                            std::to_string(*greedy) +
                            " (exact-potential monotonicity violated)");
  }
  return Status::OK();
}

// Theorem IV.2: the potential game's price of anarchy is 2, so a strict Nash
// equilibrium (game / gg run with threshold 0 to convergence) scores at
// least half the optimum. Checked against complete DFS; scores are integers,
// so the bound is exactly 2 * score >= opt.
//
// Domain caveat, found by this very harness (deep-chain seed 373): the PoA
// proof needs the objective to be submodular in the assigned set, and
// dependency chains make it supermodular instead — a randomly-initialized
// best response can park the only skilled worker on a chain root and strand
// every dependent with no improving unilateral deviation (NE at 1 vs OPT 3).
// So the random-init "game" is held to the bound only on dependency-free
// instances, the theorem's actual domain; "gg" starts from the coordinated
// greedy profile and is checked unconditionally (an empirical conformance
// property, not a theorem — a 1000-seed sweep per family backs it).
Status CheckGameHalfDfs(const OracleContext& ctx) {
  BatchProblem problem = BatchProblem::AllAt(*ctx.instance, ctx.now);
  Result<int> opt = CompleteDfsScore(ctx, problem);
  if (!opt.ok()) return opt.status();
  bool has_dependencies = false;
  for (const core::Task& t : ctx.instance->tasks()) {
    if (!t.dependencies.empty()) {
      has_dependencies = true;
      break;
    }
  }
  for (const char* name : {"game", "gg"}) {
    if (has_dependencies && std::string_view(name) == "game") continue;
    Result<int> score = CommittedScore(problem, name, ctx);
    if (!score.ok()) return score.status();
    if (2 * *score < *opt) {
      return Status::Internal(std::string(name) + ": score " +
                              std::to_string(*score) +
                              " is below half the DFS optimum " +
                              std::to_string(*opt) +
                              " (1/2-approximation violated)");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Metamorphic oracles.
// ---------------------------------------------------------------------------

// Runs every allocator (minus `exclude`) on the original and a transformed
// instance and requires equal scores; when ids are untouched by the
// transform, also bit-identical committed pairs.
Status CheckInvariance(
    const OracleContext& ctx, const std::string& transform_name,
    const std::function<InstanceParts(InstanceParts)>& transform,
    double transformed_now, bool require_identical_pairs,
    const std::vector<std::string>& exclude = {}) {
  Result<Instance> transformed =
      BuildParts(transform(PartsOf(*ctx.instance)));
  if (!transformed.ok()) {
    return Status::Internal(transform_name + ": transformed instance invalid: " +
                            transformed.status().message());
  }
  BatchProblem base = BatchProblem::AllAt(*ctx.instance, ctx.now);
  BatchProblem mapped = BatchProblem::AllAt(*transformed, transformed_now);
  for (const std::string& name : ctx.allocators) {
    if (std::find(exclude.begin(), exclude.end(), name) != exclude.end()) {
      continue;
    }
    Result<Assignment> a1 =
        RunCommitted(base, name, ctx.seed, ctx.inject_dependency_bug);
    if (!a1.ok()) return a1.status();
    Result<Assignment> a2 =
        RunCommitted(mapped, name, ctx.seed, ctx.inject_dependency_bug);
    if (!a2.ok()) return a2.status();
    if (a1->size() != a2->size()) {
      return Status::Internal(transform_name + ": " + name + " scored " +
                              std::to_string(a1->size()) + " on the original vs " +
                              std::to_string(a2->size()) +
                              " on the transformed instance");
    }
    if (require_identical_pairs && SortedPairs(*a1) != SortedPairs(*a2)) {
      return Status::Internal(transform_name + ": " + name +
                              " kept its score but changed its pairs under an "
                              "id-preserving transform");
    }
  }
  return Status::OK();
}

// (x, y) -> (-y, x): a 90-degree rotation built from an axis swap and a sign
// flip, both bit-exact, so every Euclidean distance is reproduced to the ulp.
Status CheckMetaGeometry(const OracleContext& ctx) {
  return CheckInvariance(
      ctx, "meta-geometry",
      [](InstanceParts parts) {
        for (core::Worker& w : parts.workers) {
          w.location = geo::Point{-w.location.y, w.location.x};
        }
        for (core::Task& t : parts.tasks) {
          t.location = geo::Point{-t.location.y, t.location.x};
        }
        return parts;
      },
      ctx.now, /*require_identical_pairs=*/true);
}

// Double every coordinate together with velocity and max_distance. Powers of
// two scale doubles exactly, distances double exactly, and travel times /
// budget ratios are bit-identical. greedy-auction is excluded: its fixed
// price epsilon is not a function of the geometry, so it legitimately may
// resolve ties differently at a different scale.
Status CheckMetaScale(const OracleContext& ctx) {
  return CheckInvariance(
      ctx, "meta-scale",
      [](InstanceParts parts) {
        for (core::Worker& w : parts.workers) {
          w.location = geo::Point{2.0 * w.location.x, 2.0 * w.location.y};
          w.velocity *= 2.0;
          w.max_distance *= 2.0;
        }
        for (core::Task& t : parts.tasks) {
          t.location = geo::Point{2.0 * t.location.x, 2.0 * t.location.y};
        }
        return parts;
      },
      ctx.now, /*require_identical_pairs=*/true, {"greedy-auction"});
}

// Shift every start time and the batch timestamp by the same delta: all
// deadline / arrival / availability comparisons are translation-invariant.
Status CheckMetaTimeShift(const OracleContext& ctx) {
  return CheckInvariance(
      ctx, "meta-time-shift",
      [](InstanceParts parts) {
        for (core::Worker& w : parts.workers) w.start_time += kTimeShiftDelta;
        for (core::Task& t : parts.tasks) t.start_time += kTimeShiftDelta;
        return parts;
      },
      ctx.now + kTimeShiftDelta, /*require_identical_pairs=*/true);
}

// Reverse the skill-id space: feasibility is a pure membership test, so no
// allocator may react to the labels themselves.
Status CheckMetaSkillRelabel(const OracleContext& ctx) {
  return CheckInvariance(
      ctx, "meta-skill-relabel",
      [](InstanceParts parts) {
        const core::SkillId top =
            static_cast<core::SkillId>(parts.num_skills - 1);
        for (core::Worker& w : parts.workers) {
          for (core::SkillId& s : w.skills) s = top - s;
        }
        for (core::Task& t : parts.tasks) {
          t.required_skill = top - t.required_skill;
        }
        return parts;
      },
      ctx.now, /*require_identical_pairs=*/true);
}

// Reverse worker and task indices. Heuristics are iteration-order-sensitive
// by design (greedy breaks integer-gain ties by id), so only the complete
// DFS optimum — a pure function of the instance — must be invariant.
Status CheckMetaIndexRelabel(const OracleContext& ctx) {
  InstanceParts parts = PartsOf(*ctx.instance);
  const int num_tasks = static_cast<int>(parts.tasks.size());
  InstanceParts reversed;
  reversed.num_skills = parts.num_skills;
  for (auto it = parts.workers.rbegin(); it != parts.workers.rend(); ++it) {
    core::Worker w = *it;
    w.id = static_cast<core::WorkerId>(reversed.workers.size());
    reversed.workers.push_back(std::move(w));
  }
  for (auto it = parts.tasks.rbegin(); it != parts.tasks.rend(); ++it) {
    core::Task t = *it;
    t.id = static_cast<core::TaskId>(reversed.tasks.size());
    for (core::TaskId& d : t.dependencies) d = num_tasks - 1 - d;
    reversed.tasks.push_back(std::move(t));
  }
  Result<Instance> transformed = BuildParts(std::move(reversed));
  if (!transformed.ok()) {
    return Status::Internal("meta-index-relabel: reversed instance invalid: " +
                            transformed.status().message());
  }
  BatchProblem base = BatchProblem::AllAt(*ctx.instance, ctx.now);
  BatchProblem mapped = BatchProblem::AllAt(*transformed, ctx.now);
  Result<int> opt1 = CompleteDfsScore(ctx, base);
  if (!opt1.ok()) return opt1.status();
  Result<int> opt2 = CompleteDfsScore(ctx, mapped);
  if (!opt2.ok()) return opt2.status();
  if (*opt1 != *opt2) {
    return Status::Internal(
        "meta-index-relabel: DFS optimum changed under index reversal (" +
        std::to_string(*opt1) + " vs " + std::to_string(*opt2) + ")");
  }
  return Status::OK();
}

// The incremental matching kernel's exactness contract (DESIGN.md §13):
// with the default knobs (per-batch attempt cache + cross-batch warm start)
// DASC_Greedy commits the bit-identical assignment the knob-free historical
// re-solve-everything path produces, for every backend — including a warm
// re-allocation of the same batch, which replays entirely from the store.
// Delta repair only promises equal per-solve cost/size, so it is held to
// score equality (an empirical conformance property backed by the stress
// sweep, like gg's half-DFS bound).
Status CheckWarmColdEquivalence(const OracleContext& ctx) {
  BatchProblem problem = BatchProblem::AllAt(*ctx.instance, ctx.now);
  const std::pair<const char*, algo::GreedyOptions::MatchingBackend>
      backends[] = {
          {"hungarian", algo::GreedyOptions::MatchingBackend::kHungarian},
          {"hopcroft-karp",
           algo::GreedyOptions::MatchingBackend::kHopcroftKarp},
          {"auction", algo::GreedyOptions::MatchingBackend::kAuction},
      };
  for (const auto& [label, backend] : backends) {
    algo::GreedyOptions cold_options;
    cold_options.backend = backend;
    cold_options.incremental_cache = false;
    cold_options.warm_start = false;
    cold_options.parallel_solve_threshold = 0;
    algo::GreedyAllocator cold(cold_options);
    const Assignment cold_a = cold.Allocate(problem);

    algo::GreedyOptions incremental_options;
    incremental_options.backend = backend;
    algo::GreedyAllocator incremental(incremental_options);
    const Assignment first = incremental.Allocate(problem);
    const Assignment replay = incremental.Allocate(problem);
    if (first.pairs() != cold_a.pairs()) {
      return Status::Internal(
          std::string(label) +
          ": incremental-kernel assignment differs from the cold "
          "re-solve-everything path (" +
          std::to_string(first.size()) + " vs " +
          std::to_string(cold_a.size()) + " pairs)");
    }
    if (replay.pairs() != cold_a.pairs()) {
      return Status::Internal(
          std::string(label) +
          ": warm-start replay of the same batch diverged from the cold "
          "path (" +
          std::to_string(replay.size()) + " vs " +
          std::to_string(cold_a.size()) + " pairs)");
    }
  }

  algo::GreedyOptions delta_options;
  delta_options.delta_repair = true;
  algo::GreedyAllocator delta(delta_options);
  algo::GreedyAllocator plain;
  const Assignment delta_a = delta.Allocate(problem);
  const Assignment plain_a = plain.Allocate(problem);
  if (delta_a.size() != plain_a.size()) {
    return Status::Internal(
        "delta repair committed " + std::to_string(delta_a.size()) +
        " pairs vs the cold solver's " + std::to_string(plain_a.size()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Incremental-candidate equivalence oracle.
// ---------------------------------------------------------------------------

// Full-simulation differential check of the incremental candidate view
// (DESIGN.md §17). The instance is replayed through the event-driven
// simulator with candidates maintained incrementally and verify_candidates
// on, so the disjoint BatchAuditor rebuilds every non-empty batch's
// candidate sets from scratch and compares them bitwise (CSR layout,
// worker_tasks / task_workers orders, travel_time bits). Any mismatch is a
// violation, as is any drift in the final score or completion count against
// a plain scratch-mode run of the same instance — candidate equivalence
// must imply allocation equivalence. With ctx.inject_stale_candidate the
// view silently drops one retraction, and this oracle must fire on the
// first batch that publishes the stale row.
Status CheckIncrementalCandidatesEquivalence(const OracleContext& ctx) {
  sim::SimulatorOptions options;
  options.batch_trigger = sim::SimulatorOptions::BatchTrigger::kEventDriven;
  options.candidates = sim::SimulatorOptions::CandidateMode::kIncremental;
  options.verify_candidates = true;
  options.inject_stale_candidate = ctx.inject_stale_candidate;
  algo::GreedyAllocator incremental_greedy;
  sim::Simulator incremental_sim(*ctx.instance, options);
  const sim::SimulationResult inc = incremental_sim.Run(incremental_greedy);
  if (inc.audit.candidate_mismatches > 0) {
    return Status::Internal(
        "incremental candidate view diverged from the scratch rebuild on " +
        std::to_string(inc.audit.candidate_mismatches) + " of " +
        std::to_string(inc.audit.candidate_checks) + " checked batches; " +
        inc.audit.first_candidate_mismatch);
  }

  sim::SimulatorOptions scratch_options;
  scratch_options.batch_trigger =
      sim::SimulatorOptions::BatchTrigger::kEventDriven;
  algo::GreedyAllocator scratch_greedy;
  sim::Simulator scratch_sim(*ctx.instance, scratch_options);
  const sim::SimulationResult scr = scratch_sim.Run(scratch_greedy);
  if (inc.score != scr.score || inc.completed_tasks != scr.completed_tasks) {
    return Status::Internal(
        "incremental-candidate run drifted from the scratch run: score " +
        std::to_string(inc.score) + " vs " + std::to_string(scr.score) +
        ", completed " + std::to_string(inc.completed_tasks) + " vs " +
        std::to_string(scr.completed_tasks));
  }
  return Status::OK();
}

}  // namespace

Result<Assignment> RunCommitted(const BatchProblem& problem,
                                const std::string& allocator, uint64_t seed,
                                bool inject_dependency_bug) {
  Result<std::unique_ptr<core::Allocator>> alloc =
      algo::CreateAllocator(allocator, seed);
  if (!alloc.ok()) return alloc.status();
  Assignment raw = (*alloc)->Allocate(problem);
  if (!inject_dependency_bug) return core::ValidPairs(problem, raw);
  // The injected platform bug: exclusivity dedup still happens (SplitPairs
  // applies it to both halves), but dependency-violating pairs are committed
  // as if they were fine.
  core::SplitAssignment split = core::SplitPairs(problem, raw);
  Assignment committed = split.valid;
  for (const auto& [w, t] : split.invalid.pairs()) committed.Add(w, t);
  return committed;
}

const std::vector<Oracle>& AllOracles() {
  static const std::vector<Oracle>* kOracles = new std::vector<Oracle>{
      {"validity",
       "every committed pair passes the disjoint audit re-check; committed "
       "count respects the relaxed upper bound",
       CheckValidity},
      {"determinism",
       "same seed, fresh allocator and cache => bit-identical assignment",
       CheckDeterminism},
      {"dfs-dominance",
       "no allocator's valid score exceeds the complete DFS optimum",
       CheckDfsDominance},
      {"gg-seed-monotone",
       "G-G never scores below its greedy seed (exact-potential "
       "monotonicity)",
       CheckGgSeedMonotone},
      {"game-half-dfs",
       "converged game / gg equilibria score >= 1/2 of the DFS optimum "
       "(Theorem IV.2)",
       CheckGameHalfDfs},
      {"incremental-candidates-equivalence",
       "incrementally maintained candidate sets are bitwise-equal to a "
       "from-scratch rebuild on every batch, and the run's score matches the "
       "scratch path",
       CheckIncrementalCandidatesEquivalence},
      {"warm-cold-equivalence",
       "incremental / warm-start greedy commits bit-identical assignments to "
       "the cold re-solve path; delta repair preserves the score",
       CheckWarmColdEquivalence},
      {"meta-geometry",
       "rigid rotation (axis swap + sign flip) leaves scores and pairs "
       "unchanged",
       CheckMetaGeometry},
      {"meta-scale",
       "power-of-two rescale of geometry, velocity, and travel budget leaves "
       "scores and pairs unchanged",
       CheckMetaScale},
      {"meta-time-shift",
       "uniform time translation leaves scores and pairs unchanged",
       CheckMetaTimeShift},
      {"meta-skill-relabel",
       "skill-id permutation leaves scores and pairs unchanged",
       CheckMetaSkillRelabel},
      {"meta-index-relabel",
       "worker/task index reversal leaves the complete DFS optimum unchanged",
       CheckMetaIndexRelabel},
  };
  return *kOracles;
}

std::vector<std::string> AllOracleNames() {
  std::vector<std::string> names;
  for (const Oracle& o : AllOracles()) names.push_back(o.name);
  return names;
}

const Oracle* FindOracle(const std::string& name) {
  for (const Oracle& o : AllOracles()) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

}  // namespace dasc::testing
