// Decompose / edit / rebuild helpers for core::Instance, shared by the
// shrinker (shrink.h) and the metamorphic transforms (oracles.h).
//
// Instance is immutable after Create(); every edit therefore goes through
// mutable InstanceParts and a re-validating rebuild. Removal helpers keep
// the dependency graph consistent: surviving tasks are re-densified and
// dependencies on removed tasks vanish (the perturbation semantics of
// gen/perturb.h — a dependency that disappears was never required).
#ifndef DASC_TESTING_INSTANCE_EDIT_H_
#define DASC_TESTING_INSTANCE_EDIT_H_

#include <vector>

#include "core/instance.h"
#include "util/status.h"

namespace dasc::testing {

// A mutable copy of an instance's defining data (direct dependencies only;
// the closure is recomputed on rebuild).
struct InstanceParts {
  std::vector<core::Worker> workers;
  std::vector<core::Task> tasks;
  int num_skills = 1;
};

InstanceParts PartsOf(const core::Instance& instance);

// Re-validates and rebuilds. Ids must already be dense (the removal helpers
// below maintain that); fails with the usual Instance::Create errors when an
// edit made the parts invalid (e.g. a worker left without skills).
util::Result<core::Instance> BuildParts(InstanceParts parts);

// Removes every task whose id is flagged in `drop` (sized tasks.size());
// survivors are re-densified and their dependency lists remapped, dropping
// edges into removed tasks.
InstanceParts WithoutTasks(const InstanceParts& parts,
                           const std::vector<uint8_t>& drop);

// Removes every worker whose id is flagged in `drop` (sized workers.size()).
InstanceParts WithoutWorkers(const InstanceParts& parts,
                             const std::vector<uint8_t>& drop);

}  // namespace dasc::testing

#endif  // DASC_TESTING_INSTANCE_EDIT_H_
