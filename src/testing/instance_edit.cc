#include "testing/instance_edit.h"

#include <utility>

#include "util/logging.h"

namespace dasc::testing {

InstanceParts PartsOf(const core::Instance& instance) {
  InstanceParts parts;
  parts.workers = instance.workers();
  parts.tasks = instance.tasks();
  parts.num_skills = instance.num_skills();
  return parts;
}

util::Result<core::Instance> BuildParts(InstanceParts parts) {
  return core::Instance::Create(std::move(parts.workers),
                                std::move(parts.tasks), parts.num_skills);
}

InstanceParts WithoutTasks(const InstanceParts& parts,
                           const std::vector<uint8_t>& drop) {
  DASC_CHECK_EQ(drop.size(), parts.tasks.size());
  InstanceParts out;
  out.workers = parts.workers;
  out.num_skills = parts.num_skills;
  std::vector<core::TaskId> new_id(parts.tasks.size(), core::kInvalidId);
  for (size_t i = 0; i < parts.tasks.size(); ++i) {
    if (drop[i]) continue;
    new_id[i] = static_cast<core::TaskId>(out.tasks.size());
    core::Task t = parts.tasks[i];
    t.id = new_id[i];
    out.tasks.push_back(std::move(t));
  }
  for (core::Task& t : out.tasks) {
    std::vector<core::TaskId> remapped;
    for (core::TaskId d : t.dependencies) {
      const core::TaskId nd = new_id[static_cast<size_t>(d)];
      if (nd != core::kInvalidId) remapped.push_back(nd);
    }
    t.dependencies = std::move(remapped);
  }
  return out;
}

InstanceParts WithoutWorkers(const InstanceParts& parts,
                             const std::vector<uint8_t>& drop) {
  DASC_CHECK_EQ(drop.size(), parts.workers.size());
  InstanceParts out;
  out.tasks = parts.tasks;
  out.num_skills = parts.num_skills;
  for (size_t i = 0; i < parts.workers.size(); ++i) {
    if (drop[i]) continue;
    core::Worker w = parts.workers[i];
    w.id = static_cast<core::WorkerId>(out.workers.size());
    out.workers.push_back(std::move(w));
  }
  return out;
}

}  // namespace dasc::testing
