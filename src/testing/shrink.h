// Counterexample shrinker: reduces a failing instance to a local minimum
// while re-running the failing predicate after every candidate edit.
//
// Delta-debugging flavor (ddmin): passes of decreasing-granularity task and
// worker chunk removal, then per-edge dependency pruning, then one-at-a-time
// constraint relaxation (deadline widening, travel-budget widening, start
// times to zero, skill collapse) — an edit survives only if the predicate
// still fails on the rebuilt instance. Passes repeat to a fixpoint or until
// the evaluation budget is spent. The result is 1-minimal per pass move, not
// globally minimal — good enough to turn a 9x14 random instance into the
// handful of tasks that actually matter.
#ifndef DASC_TESTING_SHRINK_H_
#define DASC_TESTING_SHRINK_H_

#include <functional>

#include "core/instance.h"

namespace dasc::testing {

// Must return true iff `candidate` still fails the property being debugged.
// Called many times; treat oracle skips (FailedPrecondition) as "does not
// fail" so shrinking cannot wander into vacuous territory.
using FailPredicate = std::function<bool(const core::Instance&)>;

struct ShrinkOptions {
  // Hard cap on predicate evaluations across all passes.
  int max_predicate_evals = 4000;
};

struct ShrinkResult {
  core::Instance instance;  // smallest still-failing instance found
  int predicate_evals = 0;
  int passes = 0;  // full fixpoint rounds executed
};

// `failing` must satisfy still_fails (checked; returned unchanged with a
// warning if it does not — a non-reproducible failure is itself a signal).
ShrinkResult Shrink(const core::Instance& failing,
                    const FailPredicate& still_fails,
                    const ShrinkOptions& options = {});

}  // namespace dasc::testing

#endif  // DASC_TESTING_SHRINK_H_
